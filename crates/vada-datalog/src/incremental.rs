//! Incremental (delta) evaluation: a persistent [`IncrementalSession`]
//! that keeps the materialized strata of one program alive between calls
//! and feeds *changes* through the engine's existing semi-naive machinery,
//! so a re-run after a small edit costs O(change) instead of O(database).
//!
//! ## Contract
//!
//! The session's output is **byte-identical** to evaluating the program
//! from scratch over the accumulated input: same derived relations, same
//! [`FactSet`](crate::engine::FactSet) insertion order. Whenever a delta
//! cannot be *proven* order-safe by the analysis below, the session falls
//! back to a full re-derivation — recording why in its
//! [`history`](IncrementalSession::history) — never to divergent output.
//! The root `incremental_equivalence` differential suite pins this for
//! randomized edit scripts, at every [`Parallelism`] level (delta passes
//! reuse the engine's independent-rule batching, so they parallelise too).
//!
//! ## Retractions
//!
//! [`IncrementalSession::retract`] removes extensional facts and maintains
//! the materialization in O(change) using two classic algorithms, chosen
//! per predicate:
//!
//! - **Counting** for non-recursive derived predicates: the session keeps
//!   per-fact, per-rule derivation counts (captured lazily on the first
//!   retraction after a full run — append-only workloads never pay for
//!   them — then maintained by both the append and the deletion path). A
//!   deletion
//!   enumerates exactly the destroyed derivations — each rule runs once
//!   per shrunk body occurrence with that occurrence bound to the removed
//!   facts, earlier occurrences reading the post-removal view and later
//!   ones the pre-removal view — and decrements counts; a fact leaves the
//!   materialization exactly when its count reaches zero.
//! - **DRed** (over-delete, then re-derive) for predicates on a positive
//!   cycle, where counting is unsound: phase 1 transitively over-deletes
//!   every fact with a destroyed derivation; phase 2 probes each
//!   over-deleted fact for an alternative derivation from the surviving
//!   view (head-bound, index-driven — O(probe), not O(stratum)) and
//!   restores the supported ones.
//!
//! Deletion preserves the byte-identity contract through an **order
//! repair** step: counting alone cannot reproduce scratch insertion order,
//! because a fact that loses its *first* derivation but keeps a later one
//! moves to the position of its first *surviving* derivation in a scratch
//! run. Removing facts whose support vanished entirely is order-safe (the
//! surviving enumeration is a subsequence of the old one), so the session
//! tracks exactly the predicates holding a partially-supported fact —
//! plus everything downstream of them — and re-establishes their scratch
//! order by re-enumerating their defining rules over the repaired
//! database. Repair is exact only for initial-pass-only heads (validated
//! against the scratch order at capture time); a partially-supported fact
//! in a recursive or otherwise non-reconstructible predicate falls back
//! to a full re-derivation, as does any DRed phase-2 restoration (the
//! restored fact's scratch position is unknowable without counts).
//! Deletions under negation, deletions reaching an aggregate input, and
//! deletions affecting a predicate that mixes ground facts with rules
//! also fall back — same contract, reason recorded in the history.
//!
//! ## Order-safety analysis (appends)
//!
//! A delta (a batch of new extensional facts) takes the fast path only
//! when every condition below holds; each names the fallback reason it
//! produces. Writing `affected` for the delta predicates closed under
//! rule heads (a rule with an affected positive body predicate makes its
//! head affected):
//!
//! 1. delta predicates are extensional — not the head of any rule or
//!    ground fact (*"delta targets derived predicate"*);
//! 2. no affected predicate is negated anywhere — growth under negation
//!    retracts conclusions (*"negated predicate changed"*);
//! 3. no aggregate rule reads an affected predicate — aggregates are not
//!    monotone (*"aggregate input changed"*);
//! 4. no affected predicate lies on a positive cycle — genuinely
//!    recursive deltas interleave semi-naive iterations with old facts
//!    (*"recursive predicate changed"*); acyclic chains are fine: affected
//!    rules fire once each, in topological waves, and every head fact's
//!    result block lands exactly when the fact first becomes visible —
//!    the same order a scratch run produces;
//! 5. each rule has at most one affected positive literal, and that
//!    literal is the outermost generator of the compiled join order — only
//!    then do new derivations form a *suffix* of the scratch enumeration
//!    (*"multiple changed body literals"* / *"changed literal not
//!    outermost"*);
//! 6. an affected head defined by several rules must be *terminal* (read
//!    nowhere) with rules firing only in the initial pass, in which case
//!    its scratch order is re-established from per-rule emission segments
//!    (*"multi-rule predicate is read downstream"*).
//!
//! ## Example
//!
//! ```
//! use vada_common::tuple;
//! use vada_datalog::engine::{Database, EngineConfig};
//! use vada_datalog::incremental::{DeltaMode, IncrementalSession};
//!
//! let mut session = IncrementalSession::new(
//!     EngineConfig::default(),
//!     "big(X) :- n(X), X >= 10.",
//! ).unwrap();
//! let mut input = Database::new();
//! input.insert("n", tuple![5]);
//! input.insert("n", tuple![15]);
//! session.run_full(input).unwrap();
//!
//! // a two-fact delta evaluates in O(2), not O(n)
//! session.apply(vec![("n".into(), tuple![25]), ("n".into(), tuple![3])]).unwrap();
//! let out = session.last_outcome().unwrap();
//! assert_eq!(out.mode, DeltaMode::Incremental);
//! assert_eq!(session.database().facts("big"), &[tuple![15], tuple![25]]);
//!
//! // …and so does a retraction: counting removes exactly the consequences
//! session.retract(vec![("n".into(), tuple![15])]).unwrap();
//! let out = session.last_outcome().unwrap();
//! assert_eq!(out.mode, DeltaMode::Incremental);
//! assert_eq!(out.retracted_facts, 1);
//! assert_eq!(session.database().facts("big"), &[tuple![25]]);
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use vada_common::obs::{key as obs_key, slug, Obs};
use vada_common::par::{self, Parallelism};
use vada_common::{Result, Tuple, VadaError};

use crate::analysis::{stratify, Stratification};
use crate::ast::{Literal, Program};
use crate::engine::{
    independent_batches, CompiledRule, Database, DeltaSpec, Engine, EngineConfig, FactSet,
};
use crate::parser::parse_program;

/// How one call to [`IncrementalSession::apply`] (or
/// [`run_full`](IncrementalSession::run_full)) evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaMode {
    /// A from-scratch materialization requested by the caller.
    Bootstrap,
    /// The delta went through the semi-naive fast path.
    Incremental,
    /// The delta was not provably order-safe; the session re-derived from
    /// scratch (the reason is in [`DeltaOutcome::fallback_reason`]).
    FullFallback,
}

/// What one evaluation step did — the incremental layer's trace entry.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaOutcome {
    /// Fast path, fallback, or explicit bootstrap.
    pub mode: DeltaMode,
    /// Why the fast path was refused (set iff `mode` is `FullFallback`).
    pub fallback_reason: Option<String>,
    /// Number of genuinely new extensional facts fed in.
    pub delta_facts: usize,
    /// Number of extensional facts retracted (input side of a
    /// [`retract`](IncrementalSession::retract) step).
    pub removed_facts: usize,
    /// Facts newly derived by this step (for full runs: all derived facts).
    pub derived_facts: usize,
    /// Derived facts that left the materialization (counting decrements
    /// reaching zero, plus DRed's net over-deletions).
    pub retracted_facts: usize,
    /// Derivations re-enumerated by the order-repair step — the deletion
    /// path's re-derivation work. Together with `retracted_facts` this is
    /// the total deletion-side work, the quantity the O(change) benchmark
    /// pins against full re-derivation.
    pub rederived_facts: usize,
    /// Predicates whose fact order was re-established from segments or by
    /// order repair (their extension is *not* an append to the previous
    /// state; consumers that mirror fact order must rebuild these, and may
    /// append for the rest).
    pub reordered: BTreeSet<String>,
}

impl DeltaOutcome {
    /// An incremental step that changed nothing.
    fn noop() -> DeltaOutcome {
        DeltaOutcome {
            mode: DeltaMode::Incremental,
            fallback_reason: None,
            delta_facts: 0,
            removed_facts: 0,
            derived_facts: 0,
            retracted_facts: 0,
            rederived_facts: 0,
            reordered: BTreeSet::new(),
        }
    }
}

/// Per-rule static info the eligibility analysis consults.
struct RuleInfo {
    head: String,
    /// Positive body predicates in source (occurrence) order.
    positive: Vec<String>,
    /// Occurrence index (among positive literals) of the positive literal
    /// the compiled join order enumerates first, if any.
    outermost_occ: Option<usize>,
    has_aggregate: bool,
}

/// Program-wide static info, computed once per session.
struct ProgramInfo {
    /// head predicate → defining rule indices (non-fact rules).
    defining: BTreeMap<String, Vec<usize>>,
    /// Predicates appearing negated anywhere.
    read_neg: BTreeSet<String>,
    /// Predicates on a genuine positive dependency cycle — the set that
    /// refuses the fast path.
    cyclic: BTreeSet<String>,
    /// Heads of ground-fact rules in the program.
    fact_heads: BTreeSet<String>,
    /// Aligned with `program.rules`; `None` for ground facts.
    rules: Vec<Option<RuleInfo>>,
    /// Multi-rule terminal heads eligible for segment tracking.
    tracked_candidates: BTreeSet<String>,
    /// Heads maintained by derivation counting under retractions:
    /// non-cyclic, no aggregate rule, no ground facts.
    counted: BTreeSet<String>,
    /// Heads whose scratch insertion order equals the emission order of
    /// their defining rules over the final database — every rule is
    /// *initial-complete*: each same-stratum derived body predicate is
    /// fully populated (by earlier initial-complete rules) before the rule
    /// first fires, so the initial pass emits everything in final order
    /// and the semi-naive re-passes derive only duplicates. The heads the
    /// order-repair step may rebuild by re-enumeration.
    order_reconstructible: BTreeSet<String>,
}

impl ProgramInfo {
    fn build(program: &Program, strat: &Stratification) -> Result<ProgramInfo> {
        let mut defining: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut read_pos = BTreeSet::new();
        let mut read_neg = BTreeSet::new();
        let mut fact_heads = BTreeSet::new();
        let mut rules: Vec<Option<RuleInfo>> = Vec::with_capacity(program.rules.len());
        for (ri, rule) in program.rules.iter().enumerate() {
            if rule.is_fact() {
                fact_heads.insert(rule.head_pred.clone());
                rules.push(None);
                continue;
            }
            defining.entry(rule.head_pred.clone()).or_default().push(ri);
            let cr = CompiledRule::compile(rule, ri)?;
            let outermost_occ = cr
                .order
                .iter()
                .find(|&&i| matches!(rule.body[i], Literal::Pos(_)))
                .and_then(|&i| cr.occurrence_of(i));
            let positive: Vec<String> =
                rule.positive_preds().map(|p| p.to_string()).collect();
            let negative: Vec<String> =
                rule.negative_preds().map(|p| p.to_string()).collect();
            read_pos.extend(positive.iter().cloned());
            read_neg.extend(negative);
            rules.push(Some(RuleInfo {
                head: rule.head_pred.clone(),
                positive,
                outermost_occ,
                has_aggregate: rule.has_aggregate(),
            }));
        }
        let mut stratum_recursive = BTreeSet::new();
        for stratum in 0..strat.stratum_count {
            stratum_recursive.extend(strat.recursive_preds(program, stratum));
        }
        // genuine positive cycles: body-pred → head edges, then every
        // predicate that can reach itself
        let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (ri, rule) in program.rules.iter().enumerate() {
            if rules[ri].is_none() {
                continue;
            }
            for p in rule.positive_preds() {
                edges.entry(p).or_default().insert(rule.head_pred.as_str());
            }
        }
        let mut cyclic = BTreeSet::new();
        for start in edges.keys().copied().collect::<Vec<_>>() {
            let mut stack: Vec<&str> = edges[start].iter().copied().collect();
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            while let Some(p) = stack.pop() {
                if p == start {
                    cyclic.insert(start.to_string());
                    break;
                }
                if seen.insert(p) {
                    if let Some(next) = edges.get(p) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
        }
        // a multi-rule head can keep scratch order under deltas only when
        // nothing observes that order downstream (terminal) and its rules
        // fire exclusively in the initial pass (no body predicate the
        // stratification deems recursive — the conservative set, so the
        // per-rule segments captured by post-hoc re-evaluation are exact)
        let mut tracked_candidates = BTreeSet::new();
        for (head, ris) in &defining {
            if ris.len() < 2
                || read_pos.contains(head)
                || read_neg.contains(head)
                || fact_heads.contains(head)
            {
                continue;
            }
            let initial_pass_only = ris.iter().all(|&ri| {
                rules[ri].as_ref().is_some_and(|info| {
                    info.positive.iter().all(|p| !stratum_recursive.contains(p))
                })
            });
            if initial_pass_only {
                tracked_candidates.insert(head.clone());
            }
        }
        let mut counted = BTreeSet::new();
        for (head, ris) in &defining {
            if cyclic.contains(head) || fact_heads.contains(head) {
                continue;
            }
            let has_agg = ris
                .iter()
                .any(|&ri| rules[ri].as_ref().is_some_and(|i| i.has_aggregate));
            if !has_agg {
                counted.insert(head.clone());
            }
        }
        // initial-complete rules, in program order: every same-stratum
        // derived body predicate is fully emitted by strictly earlier
        // initial-complete rules (lower strata are complete regardless)
        let mut initial_complete = vec![false; program.rules.len()];
        for ri in 0..program.rules.len() {
            let Some(info) = &rules[ri] else { continue };
            let head_stratum = strat.stratum_of(&info.head);
            initial_complete[ri] = info.positive.iter().all(|p| {
                let Some(djs) = defining.get(p) else {
                    return true; // extensional (or ground-only): fixed input
                };
                if fact_heads.contains(p) {
                    return strat.stratum_of(p) < head_stratum;
                }
                if strat.stratum_of(p) < head_stratum {
                    return true;
                }
                djs.iter().all(|&rj| rj < ri && initial_complete[rj])
            });
        }
        let mut order_reconstructible = BTreeSet::new();
        for (head, ris) in &defining {
            if fact_heads.contains(head) {
                continue;
            }
            if ris.iter().all(|&ri| initial_complete[ri]) {
                order_reconstructible.insert(head.clone());
            }
        }
        Ok(ProgramInfo {
            defining,
            read_neg,
            cyclic,
            fact_heads,
            rules,
            tracked_candidates,
            counted,
            order_reconstructible,
        })
    }
}

/// The recorded emission order of one tracked head: its extensional prefix
/// plus one deduplicated segment per defining rule, in program order.
/// `dedup(concat(input, segments))` is exactly the scratch insertion order,
/// because the tracked head's rules fire once each, in rule order, over
/// inputs that are finalized before their stratum starts.
struct HeadSegments {
    input: FactSet,
    /// `(rule index, emissions)` in program order.
    by_rule: Vec<(usize, FactSet)>,
}

impl HeadSegments {
    fn reconstruct(&self) -> FactSet {
        let mut fs = FactSet::default();
        for t in self.input.tuples() {
            fs.insert(t.clone());
        }
        for (_, seg) in &self.by_rule {
            for t in seg.tuples() {
                fs.insert(t.clone());
            }
        }
        fs
    }
}

/// One node of the retraction plan: the affected predicates partitioned
/// into lone extensional predicates, counting-maintained heads, and
/// positive-cycle SCCs (DRed units), in topological order.
enum RetractUnit {
    /// An extensional predicate — its removals seed the plan.
    Extensional,
    /// A non-recursive derived head maintained by derivation counting.
    Counted(String),
    /// A positive-cycle SCC maintained by DRed.
    Scc(Vec<String>),
}

/// What one DRed pass concluded.
enum DredVerdict {
    /// Every over-deleted fact was truly underivable: survivor order is
    /// untouched and the deletions commit.
    PureRemoval,
    /// Phase 2 found a restorable fact (probing stops at the first hit —
    /// the caller falls back either way, because a restored fact's
    /// scratch position is unknowable without counts).
    Rederived,
}

/// One head's re-enumeration over a database: its scratch-order fact set
/// (input prefix + per-rule emissions), per-rule derivation counts and
/// emission segments (slot-aligned with `info.defining[head]`), and the
/// total emission count. Produced by `IncrementalSession::enumerate_head`.
struct HeadEnumeration {
    rebuilt: FactSet,
    counts: Vec<(usize, HashMap<Tuple, u64>)>,
    segments: Vec<(usize, FactSet)>,
    emissions: usize,
}

/// A persistent evaluation session for one program. See the module docs.
pub struct IncrementalSession {
    engine: Engine,
    source: String,
    program: Program,
    strat: Stratification,
    info: ProgramInfo,
    /// Extensional input facts accumulated so far (what a scratch run
    /// would start from). Used for fallback re-derivation.
    base: Database,
    /// Materialized database: `base` plus everything derived.
    db: Database,
    /// Emission segments for tracked multi-rule terminal heads.
    segments: BTreeMap<String, HeadSegments>,
    /// Per counted head, aligned with its defining rules in program order:
    /// derivation counts over the current materialization. Captured
    /// *lazily* on the first retraction after a full run (append-only
    /// workloads never pay for them), incremented by append deltas,
    /// decremented by retractions; a fact leaves exactly when its total
    /// reaches zero. `None` until captured.
    counts: Option<BTreeMap<String, Vec<(usize, HashMap<Tuple, u64>)>>>,
    /// Counted heads whose captured per-rule emission order reproduced the
    /// scratch insertion order exactly — the heads the order-repair step
    /// may rebuild by re-enumeration. Captured together with `counts`.
    order_exact: BTreeSet<String>,
    history: Vec<DeltaOutcome>,
    /// Outcome tallies (bootstrap / incremental / fallback-by-reason).
    /// Always an enabled registry so the counts are available even when the
    /// engine config carries the disabled stub; [`set_obs`] swaps in a
    /// shared registry, carrying accumulated tallies along.
    ///
    /// [`set_obs`]: IncrementalSession::set_obs
    obs: Obs,
    /// Set while a failed `apply`/`retract` may have left `db`
    /// half-updated; every later delta refuses until `run_full`
    /// re-materializes.
    poisoned: bool,
    bootstrapped: bool,
    /// Armed failure point for fault-injection tests (`None` in production).
    fault: Option<&'static str>,
}

impl std::fmt::Debug for IncrementalSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalSession")
            .field("rules", &self.program.rules.len())
            .field("facts", &self.db.total_facts())
            .field("steps", &self.history.len())
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl IncrementalSession {
    /// Parse and analyse `source`, creating an empty session. Call
    /// [`run_full`](IncrementalSession::run_full) before
    /// [`apply`](IncrementalSession::apply).
    pub fn new(config: EngineConfig, source: &str) -> Result<IncrementalSession> {
        let program = parse_program(source)?;
        let strat = stratify(&program)?;
        let info = ProgramInfo::build(&program, &strat)?;
        let obs = if config.obs.is_enabled() { config.obs.clone() } else { Obs::enabled() };
        Ok(IncrementalSession {
            engine: Engine::new(config),
            obs,
            source: source.to_string(),
            program,
            strat,
            info,
            base: Database::new(),
            db: Database::new(),
            segments: BTreeMap::new(),
            counts: None,
            order_exact: BTreeSet::new(),
            history: Vec::new(),
            poisoned: false,
            bootstrapped: false,
            fault: None,
        })
    }

    /// Arm (or clear) an injected failure point — fault-injection hook for
    /// the deletion-path tests; a no-op unless the retraction code reaches
    /// the named point.
    #[doc(hidden)]
    pub fn inject_fault(&mut self, point: Option<&'static str>) {
        self.fault = point;
    }

    /// Total derivation count per fact of a counted predicate (`None` when
    /// the predicate is not maintained by counting). Test introspection
    /// for the counting invariants.
    #[doc(hidden)]
    pub fn derivation_counts(&self, pred: &str) -> Option<HashMap<Tuple, u64>> {
        let per_rule = self.counts.as_ref()?.get(pred)?;
        let mut total: HashMap<Tuple, u64> = HashMap::new();
        for (_, counts) in per_rule {
            for (t, n) in counts {
                *total.entry(t.clone()).or_insert(0) += n;
            }
        }
        Some(total)
    }

    /// The program text this session evaluates.
    pub fn program_source(&self) -> &str {
        &self.source
    }

    /// The materialized database (inputs plus everything derived).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// One entry per evaluation step, oldest first — the incremental
    /// layer's trace, including every fallback and its reason.
    pub fn history(&self) -> &[DeltaOutcome] {
        &self.history
    }

    /// The most recent evaluation step.
    pub fn last_outcome(&self) -> Option<&DeltaOutcome> {
        self.history.last()
    }

    /// Change the worker count for delta passes. Output is invariant to
    /// the level (see [`vada_common::par`]), so this is always safe.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.engine.config_mut().parallelism = parallelism;
    }

    /// Attach a shared observability registry. Tallies accumulated so far
    /// migrate into it, and both the session's outcome counters and the
    /// engine's pass counters flow there from now on. A disabled handle is
    /// ignored (the session keeps its always-on local registry).
    pub fn set_obs(&mut self, obs: Obs) {
        if obs.is_enabled() {
            obs.merge_counters_from(&self.obs);
            self.obs = obs.clone();
            self.engine.config_mut().obs = obs;
        }
    }

    /// The registry holding this session's outcome tallies.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Tally the outcome on the registry, then append it to the history.
    /// Every history entry goes through here, so
    /// `incremental.outcome.*` always sums to `history().len()` — and
    /// every step leaves one `incremental/outcome` leaf span under the
    /// step's session span, naming the mode (and fallback reason) the
    /// order-safety analysis chose.
    fn record_outcome(&mut self, outcome: DeltaOutcome) {
        {
            let s = self.obs.span("incremental/outcome");
            s.attr(
                "mode",
                match outcome.mode {
                    DeltaMode::Bootstrap => "bootstrap",
                    DeltaMode::Incremental => "incremental",
                    DeltaMode::FullFallback => "full_fallback",
                },
            );
            if let Some(reason) = &outcome.fallback_reason {
                s.attr("reason", slug(reason));
            }
        }
        match outcome.mode {
            DeltaMode::Bootstrap => self.obs.incr(obs_key::INC_BOOTSTRAP),
            DeltaMode::Incremental => self.obs.incr(obs_key::INC_INCREMENTAL),
            DeltaMode::FullFallback => {
                self.obs.incr(obs_key::INC_FALLBACK);
                if let Some(reason) = &outcome.fallback_reason {
                    self.obs
                        .incr(&format!("{}{}", obs_key::INC_FALLBACK_PREFIX, slug(reason)));
                }
            }
        }
        self.history.push(outcome);
    }

    /// Materialize from scratch over a fresh extensional input, replacing
    /// all session state. This is both the bootstrap step and the recovery
    /// path after a poisoned `apply`.
    pub fn run_full(&mut self, input: Database) -> Result<&Database> {
        let obs = self.obs.clone();
        let span = obs.span("incremental/bootstrap");
        span.attr("facts", input.total_facts());
        self.full_run(input, DeltaMode::Bootstrap, None, 0, 0)
    }

    fn full_run(
        &mut self,
        input: Database,
        mode: DeltaMode,
        fallback_reason: Option<String>,
        delta_facts: usize,
        removed_facts: usize,
    ) -> Result<&Database> {
        let db = self.engine.run(&self.program, input.clone())?;
        let derived = db.total_facts().saturating_sub(input.total_facts());
        self.segments = self.capture_segments(&input, &db)?;
        self.counts = None;
        self.order_exact = BTreeSet::new();
        self.base = input;
        self.db = db;
        self.poisoned = false;
        self.bootstrapped = true;
        self.record_outcome(DeltaOutcome {
            mode,
            fallback_reason,
            delta_facts,
            removed_facts,
            derived_facts: derived,
            retracted_facts: 0,
            rederived_facts: 0,
            reordered: BTreeSet::new(),
        });
        Ok(&self.db)
    }

    /// Capture per-rule emission segments for every tracked candidate by
    /// re-evaluating its defining rules over the final database (sound
    /// because tracked rules only read predicates finalized before their
    /// stratum). A head whose reconstruction does not reproduce the
    /// scratch order exactly is silently dropped from tracking — deltas
    /// touching it then fall back to full runs instead of risking drift.
    fn capture_segments(
        &self,
        input: &Database,
        db: &Database,
    ) -> Result<BTreeMap<String, HeadSegments>> {
        let mut out = BTreeMap::new();
        for head in &self.info.tracked_candidates {
            let e = self.enumerate_head(head, input, db)?;
            let segs = HeadSegments {
                input: input.fact_set(head).cloned().unwrap_or_default(),
                by_rule: e.segments,
            };
            if e.rebuilt.tuples() == db.facts(head) {
                out.insert(head.clone(), segs);
            }
        }
        Ok(out)
    }

    /// Re-enumerate the defining rules of `head` over `db`, in the slot
    /// order of `info.defining[head]`: the prefix facts `head` holds in
    /// `prefix` (the extensional input), then each rule's emissions in
    /// program order. The single reconstruction primitive behind segment
    /// capture, lazy count capture, and order repair — every consumer
    /// indexes counts/segments by the same positional slot, so keeping
    /// one loop keeps the alignment structural.
    fn enumerate_head(
        &self,
        head: &str,
        prefix: &Database,
        db: &Database,
    ) -> Result<HeadEnumeration> {
        let mut rebuilt = FactSet::default();
        if let Some(p) = prefix.fact_set(head) {
            for t in p.tuples() {
                rebuilt.insert(t.clone());
            }
        }
        let mut counts: Vec<(usize, HashMap<Tuple, u64>)> = Vec::new();
        let mut segments: Vec<(usize, FactSet)> = Vec::new();
        let mut emissions = 0usize;
        for &ri in &self.info.defining[head] {
            let cr = CompiledRule::compile(&self.program.rules[ri], ri)?;
            let mut seg = FactSet::default();
            let mut cnt: HashMap<Tuple, u64> = HashMap::new();
            for (_, t) in self.engine.eval_rule(&cr, db, None)? {
                emissions += 1;
                *cnt.entry(t.clone()).or_insert(0) += 1;
                seg.insert(t.clone());
                rebuilt.insert(t);
            }
            counts.push((ri, cnt));
            segments.push((ri, seg));
        }
        Ok(HeadEnumeration { rebuilt, counts, segments, emissions })
    }

    /// Capture derivation counts for every counted head over the *current*
    /// materialization, plus the set of heads whose reconstructed emission
    /// order reproduces the stored insertion order exactly (the heads the
    /// order-repair step may rebuild by re-enumeration). Lazy: runs on the
    /// first retraction after a full run, so append-only workloads never
    /// re-enumerate rules for bookkeeping they do not use; from then on
    /// the append and deletion paths keep the counts in step until the
    /// next full run drops them.
    fn ensure_counts(&mut self) -> Result<()> {
        if self.counts.is_some() {
            return Ok(());
        }
        let mut counts = BTreeMap::new();
        let mut order_exact = BTreeSet::new();
        for head in self.info.counted.clone() {
            let e = self.enumerate_head(&head, &self.base, &self.db)?;
            if e.rebuilt.tuples() == self.db.facts(&head) {
                order_exact.insert(head.clone());
            }
            counts.insert(head, e.counts);
        }
        self.counts = Some(counts);
        self.order_exact = order_exact;
        Ok(())
    }

    /// Feed a batch of new extensional facts through the session. Facts
    /// must arrive in the order a scratch input build would append them;
    /// already-present facts are ignored. Returns the updated database.
    pub fn apply(&mut self, delta: Vec<(String, Tuple)>) -> Result<&Database> {
        // the session span wraps the whole delta pass, so any engine run a
        // fallback triggers nests under it; the guard borrows a clone of
        // the handle (same registry), leaving `self` free for the pass
        let obs = self.obs.clone();
        let span = obs.span("incremental/apply");
        span.attr("facts", delta.len());
        if !self.bootstrapped {
            return Err(VadaError::Eval(
                "incremental session not bootstrapped: call run_full first".into(),
            ));
        }
        if self.poisoned {
            return Err(VadaError::Eval(
                "incremental session poisoned by an earlier failure: run_full required".into(),
            ));
        }

        // deltas must be extensional: a fact for a derived predicate would
        // occupy an input position in a scratch run, which appending can
        // never reproduce
        for (pred, _) in &delta {
            if self.info.defining.contains_key(pred) || self.info.fact_heads.contains(pred) {
                let reason = format!("delta targets derived predicate `{pred}`");
                return self.fallback(delta, reason);
            }
        }

        // extend the accumulated input; only genuinely new facts matter
        // (scratch would dedup repeats into their existing positions)
        let mut fresh: Vec<(String, Tuple)> = Vec::new();
        for (pred, t) in delta {
            if self.base.insert(&pred, t.clone()) {
                fresh.push((pred, t));
            }
        }
        if fresh.is_empty() {
            self.record_outcome(DeltaOutcome::noop());
            return Ok(&self.db);
        }

        if let Some(reason) = self.refuse_reason(&fresh) {
            return self.fallback_rerun(reason, fresh.len(), 0);
        }
        self.fast_path(fresh)
    }

    /// Run the order-safety analysis (module docs, conditions 2–6) over a
    /// batch of fresh extensional facts; `Some(reason)` refuses the fast
    /// path.
    fn refuse_reason(&self, fresh: &[(String, Tuple)]) -> Option<String> {
        let affected = self.affected_preds(fresh);
        for p in &affected {
            if self.info.read_neg.contains(p) {
                return Some(format!("negated predicate `{p}` changed"));
            }
            if self.info.cyclic.contains(p) {
                return Some(format!("recursive predicate `{p}` changed"));
            }
        }
        for info in self.info.rules.iter().flatten() {
            let hits: Vec<usize> = info
                .positive
                .iter()
                .enumerate()
                .filter(|(_, p)| affected.contains(*p))
                .map(|(occ, _)| occ)
                .collect();
            if hits.is_empty() {
                continue;
            }
            if info.has_aggregate {
                return Some(format!(
                    "aggregate input changed (head `{}`)",
                    info.head
                ));
            }
            if hits.len() > 1 {
                return Some(format!(
                    "multiple changed body literals in a rule for `{}`",
                    info.head
                ));
            }
            if info.outermost_occ != Some(hits[0]) {
                return Some(format!(
                    "changed literal `{}` is not the outermost generator in a rule for `{}`",
                    info.positive[hits[0]], info.head
                ));
            }
        }
        for h in &affected {
            let n_rules = self.info.defining.get(h).map_or(0, |v| v.len());
            if n_rules >= 2 && !self.segments.contains_key(h) {
                return Some(format!(
                    "multi-rule predicate `{h}` is read downstream or untracked"
                ));
            }
        }
        None
    }

    /// Delta predicates closed under rule heads.
    fn affected_preds(&self, fresh: &[(String, Tuple)]) -> BTreeSet<String> {
        self.closure_of(fresh.iter().map(|(p, _)| p.clone()).collect())
    }

    /// `seeds` closed under rule heads: a rule with a seed (or closed)
    /// positive body predicate adds its head. The same closure serves the
    /// affected-set computation and the order-suspect propagation — both
    /// flow along positive reads.
    fn closure_of(&self, seeds: BTreeSet<String>) -> BTreeSet<String> {
        let mut closed = seeds;
        loop {
            let mut changed = false;
            for info in self.info.rules.iter().flatten() {
                if !closed.contains(&info.head)
                    && info.positive.iter().any(|p| closed.contains(p))
                {
                    closed.insert(info.head.clone());
                    changed = true;
                }
            }
            if !changed {
                return closed;
            }
        }
    }

    /// Full re-derivation after extending the base with a delta that never
    /// made it past the extensional check.
    fn fallback(&mut self, delta: Vec<(String, Tuple)>, reason: String) -> Result<&Database> {
        let mut fresh = 0usize;
        for (pred, t) in delta {
            if self.base.insert(&pred, t) {
                fresh += 1;
            }
        }
        self.fallback_rerun(reason, fresh, 0)
    }

    fn fallback_rerun(
        &mut self,
        reason: String,
        delta_facts: usize,
        removed_facts: usize,
    ) -> Result<&Database> {
        let input = self.base.clone();
        match self.full_run(input, DeltaMode::FullFallback, Some(reason), delta_facts, removed_facts)
        {
            Ok(_) => Ok(&self.db),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    /// The semi-naive fast path. `fresh` holds genuinely new extensional
    /// facts already inserted into `base`.
    ///
    /// Affected rules fire **once each**, in topological waves per
    /// stratum: a rule becomes ready when the producer of its affected
    /// (outermost) predicate has fired — analysis has excluded positive
    /// cycles, so the affected sub-graph is a DAG and the waves drain.
    /// Each wave reuses the engine's independent-rule batching, so deltas
    /// evaluate under [`Parallelism`] exactly like full passes.
    fn fast_path(&mut self, fresh: Vec<(String, Tuple)>) -> Result<&Database> {
        self.poisoned = true; // cleared on success
        let delta_facts = fresh.len();
        let mut derived = 0usize;
        let mut reordered: BTreeSet<String> = BTreeSet::new();

        let affected = self.affected_preds(&fresh);
        // pending new facts per predicate, in arrival order — the delta
        // the engine's occurrence-restricted passes consume
        let mut pending = Database::new();
        for (pred, t) in &fresh {
            self.db.insert(pred, t.clone());
            pending.insert(pred, t.clone());
        }
        // an affected predicate's delta is complete once its producer has
        // fired; extensional deltas are complete from the start
        let mut ready: BTreeSet<&str> = affected
            .iter()
            .filter(|p| !self.info.defining.contains_key(*p))
            .map(|p| p.as_str())
            .collect();
        // emissions appended to tracked segments this step
        let mut touched_segments: BTreeSet<String> = BTreeSet::new();

        for stratum in 0..self.strat.stratum_count {
            // rules of this stratum with an affected outermost literal,
            // in program order; each fires exactly once
            let mut waiting: Vec<(usize, usize)> = Vec::new(); // (rule idx, occurrence)
            for &ri in &self.strat.strata_rules[stratum] {
                let Some(info) = &self.info.rules[ri] else { continue };
                let Some(occ) = info.outermost_occ else { continue };
                if affected.contains(&info.positive[occ]) {
                    waiting.push((ri, occ));
                }
            }
            while !waiting.is_empty() {
                let (wave, rest): (Vec<(usize, usize)>, Vec<(usize, usize)>) =
                    waiting.iter().copied().partition(|&(ri, occ)| {
                        let info = self.info.rules[ri].as_ref().expect("non-fact rule");
                        ready.contains(info.positive[occ].as_str())
                    });
                if wave.is_empty() {
                    self.poisoned = true;
                    return Err(VadaError::Eval(
                        "incremental delta plan is not acyclic (internal invariant)".into(),
                    ));
                }
                waiting = rest;
                let compiled: Vec<CompiledRule> = wave
                    .iter()
                    .map(|&(ri, _)| CompiledRule::compile(&self.program.rules[ri], ri))
                    .collect::<Result<_>>()?;
                let reads: Vec<BTreeSet<&str>> = compiled
                    .iter()
                    .map(|cr| {
                        cr.rule
                            .positive_preds()
                            .chain(cr.rule.negative_preds())
                            .collect()
                    })
                    .collect();
                let heads: Vec<&str> =
                    compiled.iter().map(|cr| cr.rule.head_pred.as_str()).collect();
                let all: Vec<usize> = (0..wave.len()).collect();
                let par_level = self.engine.pass_parallelism(pending.total_facts());
                for batch in independent_batches(&all, &reads, &heads) {
                    let outs = par::par_try_map_obs(
                        &self.obs,
                        par_level,
                        "datalog/incremental-delta",
                        &batch,
                        |_, &wi| {
                            let (_, occ) = wave[wi];
                            self.engine.eval_rule(
                                &compiled[wi],
                                &self.db,
                                Some(DeltaSpec::Insert { delta: &pending, occ }),
                            )
                        },
                    )?;
                    for (wi, out) in batch.iter().zip(outs) {
                        let (ri, _) = wave[*wi];
                        for (pred, t) in out {
                            // every emission is one new derivation: keep
                            // the retraction path's counts (if captured)
                            // in step
                            if let Some(rcs) =
                                self.counts.as_mut().and_then(|c| c.get_mut(&pred))
                            {
                                let (_, cnt) = rcs
                                    .iter_mut()
                                    .find(|(r, _)| *r == ri)
                                    .expect("firing rule defines this head");
                                *cnt.entry(t.clone()).or_insert(0) += 1;
                            }
                            if let Some(segs) = self.segments.get_mut(&pred) {
                                // tracked head: record in the rule's
                                // segment; db order re-established below
                                if segs
                                    .by_rule
                                    .iter_mut()
                                    .find(|(r, _)| *r == ri)
                                    .expect("firing rule defines this head")
                                    .1
                                    .insert(t)
                                {
                                    touched_segments.insert(pred.clone());
                                }
                            } else if self.db.insert(&pred, t.clone()) {
                                derived += 1;
                                pending.insert(&pred, t);
                            }
                        }
                    }
                }
                // every head whose (single) defining rule fired is complete
                for &(ri, _) in &wave {
                    let info = self.info.rules[ri].as_ref().expect("non-fact rule");
                    ready.insert(info.head.as_str());
                }
            }
            if self.db.total_facts() > self.engine.config().max_facts {
                return Err(VadaError::Eval(format!(
                    "derived fact count exceeded the cap of {}",
                    self.engine.config().max_facts
                )));
            }
        }

        // re-establish scratch order for tracked heads that grew
        for head in touched_segments {
            let segs = &self.segments[&head];
            let rebuilt = segs.reconstruct();
            let old_len = self.db.facts(&head).len();
            derived += rebuilt.len().saturating_sub(old_len);
            let append_only = rebuilt.tuples()[..old_len.min(rebuilt.len())]
                == *self.db.facts(&head);
            if !append_only {
                reordered.insert(head.clone());
            }
            self.db.set_fact_set(&head, rebuilt);
        }
        // facts derived into tracked segments bypass the per-stratum cap
        // checks above; re-check so the fast path errors wherever a full
        // run would (the modes must agree on errors, not just results)
        if self.db.total_facts() > self.engine.config().max_facts {
            return Err(VadaError::Eval(format!(
                "derived fact count exceeded the cap of {}",
                self.engine.config().max_facts
            )));
        }

        self.poisoned = false;
        self.record_outcome(DeltaOutcome {
            mode: DeltaMode::Incremental,
            fallback_reason: None,
            delta_facts,
            removed_facts: 0,
            derived_facts: derived,
            retracted_facts: 0,
            rederived_facts: 0,
            reordered,
        });
        Ok(&self.db)
    }

    /// Retract a batch of extensional facts from the session. Facts not
    /// present in the accumulated input are ignored (a scratch input build
    /// never held them); the rest are removed and the materialization is
    /// maintained by counting (non-recursive predicates) and DRed
    /// (positive-cycle predicates) — see the module docs. The result is
    /// byte-identical to a scratch run over the shrunk input; whenever
    /// that cannot be guaranteed the session re-derives from scratch,
    /// recording why.
    pub fn retract(&mut self, removals: Vec<(String, Tuple)>) -> Result<&Database> {
        let obs = self.obs.clone();
        let span = obs.span("incremental/retract");
        span.attr("facts", removals.len());
        if !self.bootstrapped {
            return Err(VadaError::Eval(
                "incremental session not bootstrapped: call run_full first".into(),
            ));
        }
        if self.poisoned {
            return Err(VadaError::Eval(
                "incremental session poisoned by an earlier failure: run_full required".into(),
            ));
        }

        // retractions must target extensional predicates, mirroring the
        // append path: a derived fact's presence is a consequence, not an
        // input, so "removing" one only makes sense against the base
        for (pred, _) in &removals {
            if self.info.defining.contains_key(pred) || self.info.fact_heads.contains(pred) {
                let reason = format!("retraction targets derived predicate `{pred}`");
                return self.fallback_retract(removals, reason);
            }
        }

        // base mutation starts here: any later failure leaves the session
        // poisoned until run_full re-materializes
        self.poisoned = true;
        let fresh = self.remove_from_base(removals);
        if fresh.is_empty() {
            self.poisoned = false;
            self.record_outcome(DeltaOutcome::noop());
            return Ok(&self.db);
        }

        let affected = self.closure_of(fresh.iter().map(|(p, _)| p.clone()).collect());
        if let Some(reason) = self.refuse_retraction(&affected) {
            return self.fallback_rerun(reason, 0, fresh.len());
        }
        self.retract_fast(fresh, affected)
    }

    /// Remove `removals` from the accumulated input in one batched pass
    /// per predicate (a per-fact `remove` would rescan the base k times),
    /// returning the facts that were actually present, deduplicated. The
    /// order of the returned list only seeds a set-semantics removal
    /// database, so the per-predicate grouping is safe.
    fn remove_from_base(&mut self, removals: Vec<(String, Tuple)>) -> Vec<(String, Tuple)> {
        let mut fresh: Vec<(String, Tuple)> = Vec::new();
        let mut by_pred: BTreeMap<String, HashSet<Tuple>> = BTreeMap::new();
        for (pred, t) in removals {
            if self.base.contains(&pred, &t)
                && by_pred.entry(pred.clone()).or_default().insert(t.clone())
            {
                fresh.push((pred, t));
            }
        }
        for (pred, gone) in &by_pred {
            self.base.remove_facts(pred, gone);
        }
        fresh
    }

    /// Full re-derivation after removing from the base a retraction that
    /// never made it past the extensional check.
    fn fallback_retract(
        &mut self,
        removals: Vec<(String, Tuple)>,
        reason: String,
    ) -> Result<&Database> {
        let fresh = self.remove_from_base(removals).len();
        self.fallback_rerun(reason, 0, fresh)
    }

    /// Static refusal conditions for the retraction path. Narrower than
    /// the append analysis: deletion needs no outermost/single-literal
    /// conditions (the delta-delete enumeration handles arbitrary and
    /// multiple occurrences), but shrinking under negation grows
    /// conclusions, aggregates change value rather than membership, and a
    /// head mixing ground facts with rules has support the counts cannot
    /// see.
    fn refuse_retraction(&self, affected: &BTreeSet<String>) -> Option<String> {
        for p in affected {
            if self.info.read_neg.contains(p) {
                return Some(format!("negated predicate `{p}` shrank"));
            }
            if self.info.fact_heads.contains(p) && self.info.defining.contains_key(p) {
                return Some(format!("predicate `{p}` mixes ground facts and rules"));
            }
        }
        for info in self.info.rules.iter().flatten() {
            if info.has_aggregate && info.positive.iter().any(|p| affected.contains(p)) {
                return Some(format!("aggregate input shrank (head `{}`)", info.head));
            }
        }
        None
    }

    /// The retraction fast path: counting for non-recursive units, DRed
    /// for positive-cycle SCCs, then order repair. `fresh` holds facts
    /// already removed from `base`.
    fn retract_fast(
        &mut self,
        fresh: Vec<(String, Tuple)>,
        affected: BTreeSet<String>,
    ) -> Result<&Database> {
        // first retraction since the last full run: capture the counts it
        // plans against (the capture reads only `db`, which the pending
        // base removal has not touched)
        self.ensure_counts()?;
        let removed_facts = fresh.len();
        let mut retracted = 0usize;
        let mut rederived = 0usize;

        // the removal set, grown as consequences lose their support; `db`
        // is not touched until the whole plan is known
        let mut removed = Database::new();
        for (pred, t) in &fresh {
            removed.insert(pred, t.clone());
        }

        let units = self.retraction_units(&affected)?;
        // planned count decrements per counted head, aligned with its
        // defining rules
        let mut dec: BTreeMap<String, Vec<HashMap<Tuple, u64>>> = BTreeMap::new();
        // heads left holding a partially-supported fact: their insertion
        // order is suspect and must be repaired
        let mut suspects: BTreeSet<String> = BTreeSet::new();

        for unit in &units {
            match unit {
                RetractUnit::Extensional => {}
                RetractUnit::Counted(head) => {
                    self.plan_counted_retraction(
                        head,
                        &mut removed,
                        &mut dec,
                        &mut suspects,
                        &mut retracted,
                    )?;
                }
                RetractUnit::Scc(preds) => {
                    match self.dred(preds, &mut removed, &mut retracted)? {
                        DredVerdict::PureRemoval => {}
                        DredVerdict::Rederived => {
                            let reason = format!(
                                "DRed re-derived fact(s) in recursive predicate(s) \
                                 {preds:?} — scratch order not reconstructible"
                            );
                            return self.fallback_rerun(reason, 0, removed_facts);
                        }
                    }
                }
            }
        }

        // everything downstream of a suspect inherits its order doubt: a
        // reader enumerates its inputs in their insertion order
        let suspects = self.closure_of(suspects);
        for p in &suspects {
            if self.info.cyclic.contains(p) {
                let reason = format!(
                    "partially-supported retraction reaches recursive predicate `{p}` — \
                     scratch order not reconstructible"
                );
                return self.fallback_rerun(reason, 0, removed_facts);
            }
            let multi = self.info.defining.get(p).map_or(0, |v| v.len()) >= 2;
            let repairable = self.info.order_reconstructible.contains(p)
                && self.order_exact.contains(p)
                && (!multi || self.segments.contains_key(p));
            if !repairable {
                let reason = format!(
                    "scratch order of `{p}` not reconstructible after partial retraction"
                );
                return self.fallback_rerun(reason, 0, removed_facts);
            }
        }

        // ---- commit: everything below is pure bookkeeping plus the
        // order-repair re-enumerations ----
        for pred in removed.predicates() {
            let gone: HashSet<Tuple> = removed.facts(pred).iter().cloned().collect();
            self.db.remove_facts(pred, &gone);
        }
        for (head, head_dec) in &dec {
            let per_rule = self
                .counts
                .as_mut()
                .expect("counts captured before planning")
                .get_mut(head)
                .expect("counted head has counts");
            for (slot, dmap) in head_dec.iter().enumerate() {
                let (_, cmap) = &mut per_rule[slot];
                for (t, d) in dmap {
                    match cmap.get_mut(t) {
                        Some(n) if *n > *d => *n -= d,
                        Some(n) if *n == *d => {
                            cmap.remove(t);
                        }
                        // n < d (per-rule over-decrement) or no entry at
                        // all: the counts have drifted — fail loudly
                        // instead of letting later retractions misfire
                        _ => {
                            return Err(VadaError::Eval(format!(
                                "retraction decremented more derivations of `{head}` than \
                                 were counted for one rule (internal invariant)"
                            )));
                        }
                    }
                }
            }
        }
        // tracked segments: a tuple leaves rule `ri`'s segment when its
        // per-rule count reaches zero
        for (head, head_dec) in &dec {
            if let Some(segs) = self.segments.get_mut(head) {
                let per_rule = &self.counts.as_ref().expect("counts captured")[head];
                for (slot, (_, seg)) in segs.by_rule.iter_mut().enumerate() {
                    let zero: HashSet<Tuple> = head_dec[slot]
                        .keys()
                        .filter(|t| !per_rule[slot].1.contains_key(*t))
                        .cloned()
                        .collect();
                    if !zero.is_empty() {
                        seg.remove_all(&zero);
                    }
                }
            }
        }
        if self.fault == Some("retract-commit") {
            return Err(VadaError::Eval(
                "injected fault at retract-commit (fault-injection hook)".into(),
            ));
        }

        // ---- order repair, upstream before downstream (unit order) ----
        let mut reordered: BTreeSet<String> = BTreeSet::new();
        let repair_order: Vec<String> = units
            .iter()
            .filter_map(|u| match u {
                RetractUnit::Counted(h) if suspects.contains(h) => Some(h.clone()),
                _ => None,
            })
            .collect();
        for head in &repair_order {
            let (rebuilt, work) = self.repair_head_order(head)?;
            rederived += work;
            if rebuilt.tuples() != self.db.facts(head) {
                reordered.insert(head.clone());
            }
            self.db.set_fact_set(head, rebuilt);
        }

        self.poisoned = false;
        self.record_outcome(DeltaOutcome {
            mode: DeltaMode::Incremental,
            fallback_reason: None,
            delta_facts: 0,
            removed_facts,
            derived_facts: 0,
            retracted_facts: retracted,
            rederived_facts: rederived,
            reordered,
        });
        Ok(&self.db)
    }

    /// Enumerate the derivations destroyed by `removed` for one counted
    /// head, plan its count decrements, extend `removed` with the facts
    /// whose support vanished entirely, and mark the head suspect when a
    /// fact survives on partial support.
    fn plan_counted_retraction(
        &self,
        head: &str,
        removed: &mut Database,
        dec: &mut BTreeMap<String, Vec<HashMap<Tuple, u64>>>,
        suspects: &mut BTreeSet<String>,
        retracted: &mut usize,
    ) -> Result<()> {
        let ris = &self.info.defining[head];
        let mut passes: Vec<(usize, usize)> = Vec::new(); // (slot, occurrence)
        for (slot, &ri) in ris.iter().enumerate() {
            let info = self.info.rules[ri].as_ref().expect("non-fact rule");
            for (occ, p) in info.positive.iter().enumerate() {
                if !removed.facts(p).is_empty() {
                    passes.push((slot, occ));
                }
            }
        }
        if passes.is_empty() {
            return Ok(());
        }
        let compiled: Vec<CompiledRule> = ris
            .iter()
            .map(|&ri| CompiledRule::compile(&self.program.rules[ri], ri))
            .collect::<Result<_>>()?;
        let level = self.engine.pass_parallelism(removed.total_facts());
        let removed_view: &Database = removed;
        let outs = par::par_try_map_obs(
            &self.obs,
            level,
            "datalog/incremental-retract",
            &passes,
            |_, &(slot, occ)| {
                if self.fault == Some("retract-enumerate") {
                    panic!("injected fault at retract-enumerate (fault-injection hook)");
                }
                self.engine.eval_rule(
                    &compiled[slot],
                    &self.db,
                    Some(DeltaSpec::Delete { removed: removed_view, occ }),
                )
            },
        )?;
        let mut head_dec: Vec<HashMap<Tuple, u64>> = vec![HashMap::new(); ris.len()];
        let mut emit_order: Vec<Tuple> = Vec::new();
        for (&(slot, _), out) in passes.iter().zip(&outs) {
            for (_, t) in out {
                *head_dec[slot].entry(t.clone()).or_insert(0) += 1;
                emit_order.push(t.clone());
            }
        }
        let per_rule = self
            .counts
            .as_ref()
            .expect("counts captured before planning")
            .get(head)
            .expect("counted head has counts");
        let mut decided: HashSet<Tuple> = HashSet::new();
        for t in emit_order {
            if !decided.insert(t.clone()) {
                continue;
            }
            let old: u64 = per_rule
                .iter()
                .map(|(_, c)| c.get(&t).copied().unwrap_or(0))
                .sum();
            let lost: u64 = head_dec.iter().map(|c| c.get(&t).copied().unwrap_or(0)).sum();
            if lost > old {
                return Err(VadaError::Eval(format!(
                    "retraction destroyed more derivations of `{head}` than were counted \
                     (internal invariant)"
                )));
            }
            if lost == old && !self.base.contains(head, &t) {
                // support gone: the fact leaves, cascading downstream
                removed.insert(head, t);
                *retracted += 1;
            } else if lost < old {
                // partial support: the fact stays, but its first
                // derivation may be among the destroyed ones
                suspects.insert(head.to_string());
            }
        }
        dec.insert(head.to_string(), head_dec);
        Ok(())
    }

    /// DRed over one positive-cycle SCC: transitively over-delete every
    /// fact with a destroyed derivation, then probe each for an
    /// alternative derivation from the surviving view. Pure removals
    /// commit (survivor order is untouched — no surviving fact lost any
    /// derivation); any restoration reports back so the caller can fall
    /// back (the restored fact's scratch position is unknowable).
    fn dred(
        &self,
        preds: &[String],
        removed: &mut Database,
        retracted: &mut usize,
    ) -> Result<DredVerdict> {
        let scc: BTreeSet<&str> = preds.iter().map(|p| p.as_str()).collect();
        let rule_list: Vec<usize> = self
            .info
            .rules
            .iter()
            .enumerate()
            .filter_map(|(ri, info)| {
                info.as_ref()
                    .filter(|i| scc.contains(i.head.as_str()))
                    .map(|_| ri)
            })
            .collect();
        let compiled: Vec<CompiledRule> = rule_list
            .iter()
            .map(|&ri| CompiledRule::compile(&self.program.rules[ri], ri))
            .collect::<Result<_>>()?;

        // `dead` = removals visible to this SCC plus everything
        // over-deleted so far; `frontier` = the facts that became dead in
        // the previous wave, the only ones the next wave's delta passes
        // enumerate (a derivation touching older dead facts only was
        // already enumerated when those facts entered the frontier), so
        // over-deletion stays O(destroyed derivations), not
        // O(waves × dead)
        let mut dead = Database::new();
        for &ri in &rule_list {
            let info = self.info.rules[ri].as_ref().expect("non-fact rule");
            for p in &info.positive {
                for t in removed.facts(p) {
                    dead.insert(p, t.clone());
                }
            }
        }
        let mut frontier = dead.clone();
        let mut deleted: Vec<(String, Tuple)> = Vec::new();

        // phase 1: over-delete to fixpoint
        loop {
            let mut passes: Vec<(usize, usize)> = Vec::new(); // (compiled idx, occ)
            for (ci, &ri) in rule_list.iter().enumerate() {
                let info = self.info.rules[ri].as_ref().expect("non-fact rule");
                for (occ, p) in info.positive.iter().enumerate() {
                    if !frontier.facts(p).is_empty() {
                        passes.push((ci, occ));
                    }
                }
            }
            if passes.is_empty() {
                break;
            }
            let level = self.engine.pass_parallelism(frontier.total_facts());
            let frontier_view: &Database = &frontier;
            let outs = par::par_try_map_obs(
                &self.obs,
                level,
                "datalog/incremental-retract",
                &passes,
                |_, &(ci, occ)| {
                    if self.fault == Some("dred-overdelete") {
                        panic!("injected fault at dred-overdelete (fault-injection hook)");
                    }
                    self.engine.eval_rule(
                        &compiled[ci],
                        &self.db,
                        Some(DeltaSpec::Delete { removed: frontier_view, occ }),
                    )
                },
            )?;
            let mut next_frontier = Database::new();
            for out in outs {
                for (h, t) in out {
                    // input-prefix facts keep extensional support the
                    // rules cannot see: never over-delete them
                    if self.db.contains(&h, &t)
                        && !dead.contains(&h, &t)
                        && !self.base.contains(&h, &t)
                    {
                        dead.insert(&h, t.clone());
                        next_frontier.insert(&h, t.clone());
                        deleted.push((h, t));
                    }
                }
            }
            if next_frontier.total_facts() == 0 {
                break;
            }
            frontier = next_frontier;
        }
        if deleted.is_empty() {
            return Ok(DredVerdict::PureRemoval);
        }

        if self.fault == Some("dred-rederive") {
            return Err(VadaError::Eval(
                "injected fault at dred-rederive (fault-injection hook)".into(),
            ));
        }

        // phase 2: re-derivation probes against the surviving view. The
        // caller falls back to a full re-derivation on ANY restoration
        // (the restored fact's scratch position is unknowable without
        // counts), so the first successful probe settles the verdict —
        // no point finishing the restoration fixpoint just to discard it
        for (h, t) in &deleted {
            for &ri in &self.info.defining[h] {
                let ci = rule_list.iter().position(|r| *r == ri).expect("SCC rule");
                if self.engine.derives_fact(&compiled[ci], &self.db, &dead, t)? {
                    return Ok(DredVerdict::Rederived);
                }
            }
        }
        for (h, t) in deleted {
            removed.insert(&h, t);
            *retracted += 1;
        }
        Ok(DredVerdict::PureRemoval)
    }

    /// Re-enumerate the defining rules of one suspect head over the
    /// repaired database, rebuilding its scratch insertion order (input
    /// prefix first, then per-rule emissions in program order) and
    /// refreshing its counts and segments. Returns the rebuilt fact set
    /// and the number of derivations enumerated (the repair work).
    fn repair_head_order(&mut self, head: &str) -> Result<(FactSet, usize)> {
        let e = self.enumerate_head(head, &self.base, &self.db)?;
        if let Some(per_rule) = self.counts.as_mut().and_then(|c| c.get_mut(head)) {
            *per_rule = e.counts;
        }
        if let Some(segs) = self.segments.get_mut(head) {
            segs.by_rule = e.segments;
        }
        Ok((e.rebuilt, e.emissions))
    }

    /// Partition the affected predicates into retraction units — lone
    /// extensional predicates, counted heads, and positive-cycle SCCs —
    /// in a topological order of the positive dependency graph, so every
    /// unit fires with the complete removal sets of its inputs.
    fn retraction_units(&self, affected: &BTreeSet<String>) -> Result<Vec<RetractUnit>> {
        // positive edges among affected predicates: body → head
        let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for info in self.info.rules.iter().flatten() {
            if !affected.contains(&info.head) {
                continue;
            }
            for p in &info.positive {
                if affected.contains(p) && *p != info.head {
                    edges.entry(p.as_str()).or_default().insert(info.head.as_str());
                }
            }
        }
        let reach = |from: &str| -> BTreeSet<&str> {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack: Vec<&str> =
                edges.get(from).map(|s| s.iter().copied().collect()).unwrap_or_default();
            while let Some(p) = stack.pop() {
                if seen.insert(p) {
                    if let Some(next) = edges.get(p) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
            seen
        };
        // group cyclic predicates into SCCs by mutual reachability
        let cyclic_affected: Vec<&String> =
            affected.iter().filter(|p| self.info.cyclic.contains(*p)).collect();
        let reachable: BTreeMap<&str, BTreeSet<&str>> = cyclic_affected
            .iter()
            .map(|p| (p.as_str(), reach(p)))
            .collect();
        let mut scc_of: BTreeMap<&str, usize> = BTreeMap::new();
        let mut sccs: Vec<Vec<String>> = Vec::new();
        for p in &cyclic_affected {
            if scc_of.contains_key(p.as_str()) {
                continue;
            }
            let id = sccs.len();
            let mut members = vec![p.to_string()];
            scc_of.insert(p.as_str(), id);
            for q in cyclic_affected.iter().skip_while(|q| q != &p).skip(1) {
                if !scc_of.contains_key(q.as_str())
                    && reachable[p.as_str()].contains(q.as_str())
                    && reachable[q.as_str()].contains(p.as_str())
                {
                    scc_of.insert(q.as_str(), id);
                    members.push(q.to_string());
                }
            }
            sccs.push(members);
        }
        // unit ids: one per non-cyclic predicate, one per SCC
        let unit_of = |p: &str| -> String {
            scc_of
                .get(p)
                .map(|id| format!("\u{0}scc{id}"))
                .unwrap_or_else(|| p.to_string())
        };
        let mut unit_deps: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut unit_members: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for p in affected {
            let u = unit_of(p);
            unit_members.entry(u.clone()).or_default().push(p.clone());
            unit_deps.entry(u).or_default();
        }
        for (from, tos) in &edges {
            let fu = unit_of(from);
            for to in tos {
                let tu = unit_of(to);
                if fu != tu {
                    unit_deps.entry(tu).or_default().insert(fu.clone());
                }
            }
        }
        // Kahn, smallest unit key first (determinism)
        let mut order: Vec<RetractUnit> = Vec::new();
        let mut done: BTreeSet<String> = BTreeSet::new();
        while done.len() < unit_deps.len() {
            let mut fired = false;
            let ready: Vec<String> = unit_deps
                .iter()
                .filter(|(u, deps)| !done.contains(*u) && deps.iter().all(|d| done.contains(d)))
                .map(|(u, _)| u.clone())
                .collect();
            for u in ready {
                fired = true;
                let members = &unit_members[&u];
                let unit = if u.starts_with('\u{0}') {
                    RetractUnit::Scc(members.clone())
                } else {
                    let p = &members[0];
                    if self.info.defining.contains_key(p) {
                        RetractUnit::Counted(p.clone())
                    } else {
                        RetractUnit::Extensional
                    }
                };
                order.push(unit);
                done.insert(u);
            }
            if !fired {
                // the SCC condensation should leave an acyclic unit graph;
                // committing a partial plan would silently diverge, so fail
                // (the session is already poisoned and run_full recovers)
                return Err(VadaError::Eval(
                    "retraction unit graph is cyclic (internal invariant)".into(),
                ));
            }
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    /// Scratch evaluation of `source` over `input`, dumped in the
    /// order-sensitive way downstream components observe.
    fn scratch(source: &str, input: &Database) -> String {
        let db = Engine::default()
            .run(&parse_program(source).unwrap(), input.clone())
            .unwrap();
        dump(&db)
    }

    fn dump(db: &Database) -> String {
        let mut out = String::new();
        for pred in db.predicates() {
            for t in db.facts(pred) {
                out.push_str(&format!("{pred}{t:?}\n"));
            }
        }
        out
    }

    fn session(source: &str, input: Database) -> IncrementalSession {
        let mut s = IncrementalSession::new(EngineConfig::default(), source).unwrap();
        s.run_full(input).unwrap();
        s
    }

    #[test]
    fn single_rule_append_takes_fast_path_and_matches_scratch() {
        let src = "q(X, Y) :- p(X), r(X, Y).";
        let mut input = Database::new();
        for i in 0..20i64 {
            input.insert("p", tuple![i]);
            input.insert("r", tuple![i, i * 10]);
        }
        let mut s = session(src, input.clone());
        s.apply(vec![("p".into(), tuple![100i64])]).unwrap();
        input.insert("p", tuple![100i64]);
        assert_eq!(s.last_outcome().unwrap().mode, DeltaMode::Incremental);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn delta_cascades_through_derived_chain() {
        // p → mid → top is an acyclic chain inside one stratum: the waves
        // fire mid's rule first, then top's, all on the fast path
        let src = "mid(X) :- p(X). top(X, Y) :- mid(X), k(X, Y).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        input.insert("k", tuple![1, 10]);
        input.insert("k", tuple![2, 20]);
        let mut s = session(src, input.clone());
        s.apply(vec![("p".into(), tuple![2])]).unwrap();
        input.insert("p", tuple![2]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental);
        assert_eq!(out.delta_facts, 1);
        assert_eq!(out.derived_facts, 2, "mid(2) and top(2,20)");
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn non_outermost_change_falls_back_and_still_matches() {
        let src = "q(X, Y) :- p(X), r(X, Y).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        input.insert("p", tuple![2]);
        input.insert("r", tuple![1, 10]);
        let mut s = session(src, input.clone());
        // r is the inner literal: appending r rows would interleave into
        // the middle of the scratch enumeration
        s.apply(vec![("r".into(), tuple![2, 20])]).unwrap();
        input.insert("r", tuple![2, 20]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(
            out.fallback_reason.as_deref().unwrap().contains("not the outermost"),
            "{out:?}"
        );
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn negation_and_aggregate_inputs_fall_back() {
        let src = r#"
            lonely(X) :- node(X), not linked(X).
            linked(X) :- edge(X, _).
            total(count(X)) :- node(X).
        "#;
        let mut input = Database::new();
        input.insert("node", tuple![1]);
        input.insert("edge", tuple![1, 2]);
        let mut s = session(src, input.clone());

        // edge feeds linked which is negated: growth retracts lonely facts
        s.apply(vec![("edge".into(), tuple![3, 4])]).unwrap();
        input.insert("edge", tuple![3, 4]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(out.fallback_reason.as_deref().unwrap().contains("negated"), "{out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));

        // node feeds both the negation rule (as outer generator, fine) and
        // the count aggregate (not monotone)
        s.apply(vec![("node".into(), tuple![5])]).unwrap();
        input.insert("node", tuple![5]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn recursive_delta_falls_back() {
        let src = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).";
        let mut input = Database::new();
        for i in 0..10i64 {
            input.insert("edge", tuple![i, i + 1]);
        }
        let mut s = session(src, input.clone());
        s.apply(vec![("edge".into(), tuple![20i64, 21i64])]).unwrap();
        input.insert("edge", tuple![20i64, 21i64]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn multi_rule_terminal_head_keeps_scratch_order() {
        // classic union head: scratch order is (rule A block, rule B block),
        // so a delta through rule A must land *before* rule B's old facts
        let src = "all(X) :- a(X). all(X) :- b(X).";
        let mut input = Database::new();
        input.insert("a", tuple![1]);
        input.insert("b", tuple![10]);
        input.insert("b", tuple![11]);
        let mut s = session(src, input.clone());
        s.apply(vec![("a".into(), tuple![2])]).unwrap();
        input.insert("a", tuple![2]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental, "{out:?}");
        assert!(out.reordered.contains("all"), "insertion is mid-sequence: {out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));
        assert_eq!(
            s.database().facts("all"),
            &[tuple![1], tuple![2], tuple![10], tuple![11]]
        );

        // a delta through the *last* rule is a pure append
        s.apply(vec![("b".into(), tuple![12])]).unwrap();
        input.insert("b", tuple![12]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental);
        assert!(out.reordered.is_empty(), "{out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn multi_rule_head_read_downstream_falls_back() {
        let src = "all(X) :- a(X). all(X) :- b(X). big(X) :- all(X), X > 5.";
        let mut input = Database::new();
        input.insert("a", tuple![1]);
        input.insert("b", tuple![10]);
        let mut s = session(src, input.clone());
        s.apply(vec![("a".into(), tuple![7])]).unwrap();
        input.insert("a", tuple![7]);
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(out.fallback_reason.as_deref().unwrap().contains("multi-rule"), "{out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn derived_predicate_delta_falls_back() {
        let src = "q(X) :- p(X).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        let mut s = session(src, input.clone());
        s.apply(vec![("q".into(), tuple![99])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(out.fallback_reason.as_deref().unwrap().contains("derived"), "{out:?}");
        // scratch over input-with-q must agree
        input.insert("q", tuple![99]);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn duplicate_delta_facts_are_noops() {
        let src = "q(X) :- p(X).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        let mut s = session(src, input);
        s.apply(vec![("p".into(), tuple![1])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental);
        assert_eq!(out.delta_facts, 0);
        assert_eq!(out.derived_facts, 0);
    }

    #[test]
    fn skolem_heads_stay_deterministic_under_deltas() {
        let src = "owner(X, Z) :- prop(X).";
        let mut input = Database::new();
        input.insert("prop", tuple!["p1"]);
        let mut s = session(src, input.clone());
        s.apply(vec![("prop".into(), tuple!["p2"])]).unwrap();
        input.insert("prop", tuple!["p2"]);
        assert_eq!(s.last_outcome().unwrap().mode, DeltaMode::Incremental);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn randomized_edit_scripts_match_scratch_at_every_level() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        // a program exercising every fast-path shape plus fallback causes
        let src = r#"
            all(X, Y) :- a(X, Y).
            all(X, Y) :- b(X, Y).
            picked(X, Y) :- a(X, Y), k(X).
            wide(X, Y, Z) :- picked(X, Y), w(Y, Z).
        "#;
        for seed in 0..6u64 {
            println!("randomized_edit_scripts seed {seed}");
            let mut rng = StdRng::seed_from_u64(seed);
            let mut input = Database::new();
            for i in 0..30i64 {
                input.insert("a", tuple![i % 7, i]);
                input.insert("b", tuple![i % 5, i + 100]);
                if i % 3 == 0 {
                    input.insert("k", tuple![i % 7]);
                }
                input.insert("w", tuple![i, i * 2]);
            }
            let levels = [Parallelism::Sequential, Parallelism::Threads(4)];
            let mut sessions: Vec<IncrementalSession> = levels
                .iter()
                .map(|&par| {
                    let mut s =
                        IncrementalSession::new(EngineConfig::default(), src).unwrap();
                    s.set_parallelism(par);
                    s.run_full(input.clone()).unwrap();
                    s
                })
                .collect();
            let mut fast = 0usize;
            let mut fast_retract = 0usize;
            for _step in 0..16 {
                let retracting = rng.gen_range(0usize..3) == 0;
                let mut delta: Vec<(String, Tuple)> = Vec::new();
                if retracting {
                    // retract existing facts picked structurally
                    for _ in 0..rng.gen_range(1usize..3) {
                        let pred = ["a", "b", "k", "w"][rng.gen_range(0usize..4)];
                        let facts = input.facts(pred);
                        if facts.is_empty() {
                            continue;
                        }
                        let t = facts[rng.gen_range(0usize..facts.len())].clone();
                        delta.push((pred.to_string(), t));
                    }
                    let mut shrunk = Database::new();
                    for pred in input.predicates() {
                        for t in input.facts(pred) {
                            if !delta.iter().any(|(p, d)| p == pred && d == t) {
                                shrunk.insert(pred, t.clone());
                            }
                        }
                    }
                    input = shrunk;
                } else {
                    for _ in 0..rng.gen_range(1usize..4) {
                        let v: i64 = rng.gen_range(0i64..2000);
                        let pred = ["a", "b", "k", "w"][rng.gen_range(0usize..4)];
                        let t = match pred {
                            "k" => tuple![v % 9],
                            _ => tuple![v % 9, v],
                        };
                        delta.push((pred.to_string(), t));
                    }
                    for (p, t) in &delta {
                        input.insert(p, t.clone());
                    }
                }
                let mut dumps = Vec::new();
                for s in &mut sessions {
                    if retracting {
                        s.retract(delta.clone()).unwrap();
                    } else {
                        s.apply(delta.clone()).unwrap();
                    }
                    if s.last_outcome().unwrap().mode == DeltaMode::Incremental {
                        if retracting {
                            fast_retract += 1;
                        } else {
                            fast += 1;
                        }
                    }
                    dumps.push(dump(s.database()));
                }
                let expected = scratch(src, &input);
                for (i, d) in dumps.iter().enumerate() {
                    assert_eq!(
                        d, &expected,
                        "seed {seed} level {:?} (retracting={retracting})",
                        levels[i]
                    );
                }
            }
            assert!(fast > 0, "seed {seed}: append fast path never fired");
            assert!(fast_retract > 0, "seed {seed}: retraction fast path never fired");
        }
    }

    #[test]
    fn injected_panic_mid_counting_poisons_until_run_full() {
        let src = "q(X, Y) :- p(X), r(X, Y).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        input.insert("r", tuple![1, 10]);
        let mut s = session(src, input.clone());
        s.inject_fault(Some("retract-enumerate"));
        let err = s.retract(vec![("p".into(), tuple![1])]).unwrap_err();
        assert_eq!(err.kind(), "parallel", "{err}");
        assert!(err.message().contains("injected fault"), "{err}");
        // poisoned: both deltas and retractions are refused…
        assert!(s.apply(vec![("p".into(), tuple![2])]).unwrap_err().message().contains("poisoned"));
        assert!(s
            .retract(vec![("r".into(), tuple![1, 10])])
            .unwrap_err()
            .message()
            .contains("poisoned"));
        // …until run_full re-materializes (fault cleared first)
        s.inject_fault(None);
        let mut shrunk = Database::new();
        shrunk.insert("r", tuple![1, 10]);
        s.run_full(shrunk.clone()).unwrap();
        s.retract(vec![("r".into(), tuple![1, 10])]).unwrap();
        assert_eq!(dump(s.database()), scratch(src, &Database::new()));
    }

    #[test]
    fn injected_panic_mid_dred_poisons_until_run_full() {
        let src = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).";
        let mut input = Database::new();
        for i in 0..6i64 {
            input.insert("edge", tuple![i, i + 1]);
        }
        for fault in ["dred-overdelete", "dred-rederive", "retract-commit"] {
            let mut s = session(src, input.clone());
            s.inject_fault(Some(fault));
            let err = s.retract(vec![("edge".into(), tuple![2i64, 3i64])]).unwrap_err();
            assert!(err.message().contains("injected fault"), "{fault}: {err}");
            let err = s.retract(vec![("edge".into(), tuple![0i64, 1i64])]).unwrap_err();
            assert!(err.message().contains("poisoned"), "{fault}: {err}");
            // recovery: run_full over the post-retraction base
            s.inject_fault(None);
            let mut shrunk = Database::new();
            for i in 0..6i64 {
                if i != 2 {
                    shrunk.insert("edge", tuple![i, i + 1]);
                }
            }
            s.run_full(shrunk.clone()).unwrap();
            assert_eq!(dump(s.database()), scratch(src, &shrunk), "{fault}");
            // and the deletion path works again
            s.retract(vec![("edge".into(), tuple![4i64, 5i64])]).unwrap();
            assert_eq!(s.last_outcome().unwrap().mode, DeltaMode::Incremental, "{fault}");
            shrunk.remove("edge", &tuple![4i64, 5i64]);
            assert_eq!(dump(s.database()), scratch(src, &shrunk), "{fault}");
        }
    }

    #[test]
    fn retraction_takes_counting_path_and_matches_scratch() {
        let src = "q(X, Y) :- p(X), r(X, Y).";
        let mut input = Database::new();
        for i in 0..20i64 {
            input.insert("p", tuple![i]);
            input.insert("r", tuple![i, i * 10]);
        }
        let mut s = session(src, input.clone());
        s.retract(vec![("p".into(), tuple![7i64])]).unwrap();
        let mut shrunk = Database::new();
        for i in 0..20i64 {
            if i != 7 {
                shrunk.insert("p", tuple![i]);
            }
            shrunk.insert("r", tuple![i, i * 10]);
        }
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental, "{out:?}");
        assert_eq!(out.removed_facts, 1);
        assert_eq!(out.retracted_facts, 1, "q(7,70) loses its only support");
        assert_eq!(out.rederived_facts, 0);
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
    }

    #[test]
    fn retraction_cascades_through_derived_chain() {
        let src = "mid(X) :- p(X). top(X, Y) :- mid(X), k(X, Y).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        input.insert("p", tuple![2]);
        input.insert("k", tuple![1, 10]);
        input.insert("k", tuple![2, 20]);
        let mut s = session(src, input);
        s.retract(vec![("p".into(), tuple![2])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental, "{out:?}");
        assert_eq!(out.retracted_facts, 2, "mid(2) and top(2,20)");
        let mut shrunk = Database::new();
        shrunk.insert("p", tuple![1]);
        shrunk.insert("k", tuple![1, 10]);
        shrunk.insert("k", tuple![2, 20]);
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
    }

    #[test]
    fn partial_support_repairs_order_exactly() {
        // q(X) is derived once per matching r-row: removing r(1,"a") leaves
        // q(1) supported by r(1,"b") only — in a scratch run q(1) now
        // appears *after* q(2), so the repair step must reorder
        let src = "q(X) :- r(X, _).";
        let mut input = Database::new();
        input.insert("r", tuple![1, "a"]);
        input.insert("r", tuple![2, "a"]);
        input.insert("r", tuple![1, "b"]);
        let mut s = session(src, input.clone());
        assert_eq!(s.database().facts("q"), &[tuple![1], tuple![2]]);
        s.retract(vec![("r".into(), tuple![1, "a"])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental, "{out:?}");
        assert_eq!(out.retracted_facts, 0, "q(1) keeps one derivation");
        assert!(out.rederived_facts > 0, "order repair re-enumerated q: {out:?}");
        assert!(out.reordered.contains("q"), "{out:?}");
        assert_eq!(s.database().facts("q"), &[tuple![2], tuple![1]]);
        let mut shrunk = Database::new();
        shrunk.insert("r", tuple![2, "a"]);
        shrunk.insert("r", tuple![1, "b"]);
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
        // counts follow the repair: q(1) is down to one derivation
        let counts = s.derivation_counts("q").unwrap();
        assert_eq!(counts.get(&tuple![1]), Some(&1));
        assert_eq!(counts.get(&tuple![2]), Some(&1));
    }

    #[test]
    fn multi_rule_segments_survive_retraction() {
        let src = "all(X) :- a(X). all(X) :- b(X).";
        let mut input = Database::new();
        input.insert("a", tuple![1]);
        input.insert("a", tuple![2]);
        input.insert("b", tuple![10]);
        input.insert("b", tuple![2]);
        let mut s = session(src, input.clone());
        assert_eq!(s.database().facts("all"), &[tuple![1], tuple![2], tuple![10]]);

        // retract a(2): all(2) survives through rule B, but moves to B's
        // segment position in a scratch run
        s.retract(vec![("a".into(), tuple![2])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental, "{out:?}");
        let mut shrunk = Database::new();
        shrunk.insert("a", tuple![1]);
        shrunk.insert("b", tuple![10]);
        shrunk.insert("b", tuple![2]);
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
        assert_eq!(s.database().facts("all"), &[tuple![1], tuple![10], tuple![2]]);

        // and a later append still lands correctly mid-sequence
        s.apply(vec![("a".into(), tuple![5])]).unwrap();
        shrunk.insert("a", tuple![5]);
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
    }

    #[test]
    fn recursive_pure_removal_goes_through_dred() {
        // a chain has no alternative paths: removing an edge over-deletes
        // a suffix of tc and re-derives nothing — pure removal, fast path
        let src = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).";
        let mut input = Database::new();
        for i in 0..10i64 {
            input.insert("edge", tuple![i, i + 1]);
        }
        let mut s = session(src, input);
        s.retract(vec![("edge".into(), tuple![5i64, 6i64])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental, "{out:?}");
        // destroyed: every path crossing 5→6, i.e. (a,b) with a<=5 < 6<=b
        assert_eq!(out.retracted_facts, 30);
        let mut shrunk = Database::new();
        for i in 0..10i64 {
            if i != 5 {
                shrunk.insert("edge", tuple![i, i + 1]);
            }
        }
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
    }

    #[test]
    fn recursive_rederivation_falls_back_and_matches() {
        // diamond: 0→1→3 and 0→2→3, so tc(0,3) survives the removal of
        // edge(1,3) — DRed re-derives it and the session must fall back
        let src = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).";
        let mut input = Database::new();
        for (a, b) in [(0i64, 1i64), (1, 3), (0, 2), (2, 3), (3, 4)] {
            input.insert("edge", tuple![a, b]);
        }
        let mut s = session(src, input);
        s.retract(vec![("edge".into(), tuple![1i64, 3i64])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback, "{out:?}");
        assert!(
            out.fallback_reason.as_deref().unwrap().contains("re-derived"),
            "{out:?}"
        );
        let mut shrunk = Database::new();
        for (a, b) in [(0i64, 1i64), (0, 2), (2, 3), (3, 4)] {
            shrunk.insert("edge", tuple![a, b]);
        }
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
    }

    #[test]
    fn retraction_under_negation_and_aggregates_falls_back() {
        let src = r#"
            lonely(X) :- node(X), not linked(X).
            linked(X) :- edge(X, _).
            total(count(X)) :- node(X).
        "#;
        let mut input = Database::new();
        input.insert("node", tuple![1]);
        input.insert("node", tuple![2]);
        input.insert("edge", tuple![1, 2]);
        let mut s = session(src, input.clone());

        // shrinking edge grows lonely: negation fallback
        s.retract(vec![("edge".into(), tuple![1, 2])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(out.fallback_reason.as_deref().unwrap().contains("shrank"), "{out:?}");
        let mut shrunk = Database::new();
        shrunk.insert("node", tuple![1]);
        shrunk.insert("node", tuple![2]);
        assert_eq!(dump(s.database()), scratch(src, &shrunk));

        // shrinking node changes the aggregate value: fallback
        s.retract(vec![("node".into(), tuple![2])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        shrunk = Database::new();
        shrunk.insert("node", tuple![1]);
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
    }

    #[test]
    fn delete_everything_then_reinsert_round_trips() {
        let src = "all(X) :- a(X). all(X) :- b(X). q(X, Y) :- a(X), w(X, Y).";
        let mut input = Database::new();
        input.insert("a", tuple![1]);
        input.insert("a", tuple![2]);
        input.insert("b", tuple![3]);
        input.insert("w", tuple![1, 10]);
        let mut s = session(src, input.clone());

        // delete every extensional fact: the fixpoint empties
        s.retract(vec![
            ("a".into(), tuple![1]),
            ("a".into(), tuple![2]),
            ("b".into(), tuple![3]),
            ("w".into(), tuple![1, 10]),
        ])
        .unwrap();
        assert_eq!(s.last_outcome().unwrap().mode, DeltaMode::Incremental);
        assert_eq!(s.database().total_facts(), 0);
        assert_eq!(dump(s.database()), scratch(src, &Database::new()));

        // re-insert in a fresh order: byte-identical to scratch over that order
        s.apply(vec![
            ("b".into(), tuple![3]),
            ("a".into(), tuple![2]),
            ("w".into(), tuple![1, 10]),
            ("a".into(), tuple![1]),
        ])
        .unwrap();
        let mut rebuilt = Database::new();
        rebuilt.insert("b", tuple![3]);
        rebuilt.insert("a", tuple![2]);
        rebuilt.insert("w", tuple![1, 10]);
        rebuilt.insert("a", tuple![1]);
        assert_eq!(dump(s.database()), scratch(src, &rebuilt));
    }

    #[test]
    fn delete_then_reinsert_same_fact_moves_to_the_end() {
        let src = "q(X) :- p(X).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        input.insert("p", tuple![2]);
        let mut s = session(src, input);
        s.retract(vec![("p".into(), tuple![1])]).unwrap();
        s.apply(vec![("p".into(), tuple![1])]).unwrap();
        // scratch over the re-ordered input puts 1 after 2
        let mut reordered = Database::new();
        reordered.insert("p", tuple![2]);
        reordered.insert("p", tuple![1]);
        assert_eq!(dump(s.database()), scratch(src, &reordered));
        assert_eq!(s.database().facts("q"), &[tuple![2], tuple![1]]);
    }

    #[test]
    fn retracting_missing_or_derived_facts() {
        let src = "q(X) :- p(X).";
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        let mut s = session(src, input.clone());
        // not in the base: a no-op
        s.retract(vec![("p".into(), tuple![99])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::Incremental);
        assert_eq!(out.removed_facts, 0);
        // a derived predicate: fallback, like the append path
        s.retract(vec![("q".into(), tuple![1])]).unwrap();
        let out = s.last_outcome().unwrap();
        assert_eq!(out.mode, DeltaMode::FullFallback);
        assert!(out.fallback_reason.as_deref().unwrap().contains("derived"), "{out:?}");
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn counting_invariant_counts_are_exact_after_mixed_edits() {
        let src = "q(X) :- r(X, _). wide(X, Z) :- q(X), w(X, Z).";
        let mut input = Database::new();
        for i in 0..8i64 {
            input.insert("r", tuple![i % 4, i]);
            input.insert("w", tuple![i % 4, i * 100]);
        }
        let mut s = session(src, input.clone());
        s.apply(vec![("r".into(), tuple![1i64, 50i64])]).unwrap();
        input.insert("r", tuple![1i64, 50i64]);
        s.retract(vec![("r".into(), tuple![1i64, 1i64]), ("w".into(), tuple![2i64, 200i64])])
            .unwrap();
        // reference counts: enumerate each rule over the scratch fixpoint
        let mut shrunk = Database::new();
        for t in input.facts("r") {
            if t != &tuple![1i64, 1i64] {
                shrunk.insert("r", t.clone());
            }
        }
        for t in input.facts("w") {
            if t != &tuple![2i64, 200i64] {
                shrunk.insert("w", t.clone());
            }
        }
        let program = parse_program(src).unwrap();
        let scratch_db = Engine::default().run(&program, shrunk.clone()).unwrap();
        for (pred, ri) in [("q", 0usize), ("wide", 1usize)] {
            let cr = CompiledRule::compile(&program.rules[ri], ri).unwrap();
            let mut want: HashMap<Tuple, u64> = HashMap::new();
            for (_, t) in Engine::default().eval_rule(&cr, &scratch_db, None).unwrap() {
                *want.entry(t).or_insert(0) += 1;
            }
            assert_eq!(s.derivation_counts(pred).unwrap(), want, "counts drifted for {pred}");
        }
        assert_eq!(dump(s.database()), scratch(src, &shrunk));
    }

    #[test]
    fn mid_delta_error_poisons_until_run_full() {
        // the delta pass hits an arithmetic type error only for the new fact
        let src = r#"q(Y) :- p(X), Y = X * 2."#;
        let mut input = Database::new();
        input.insert("p", tuple![1]);
        let mut s = session(src, input.clone());
        let err = s
            .apply(vec![("p".into(), tuple!["not a number"])])
            .unwrap_err();
        assert_eq!(err.kind(), "eval", "{err}");
        // poisoned: further deltas are refused…
        let err = s.apply(vec![("p".into(), tuple![2])]).unwrap_err();
        assert!(err.message().contains("poisoned"), "{err}");
        // …until a full re-materialization over clean input
        s.run_full(input.clone()).unwrap();
        s.apply(vec![("p".into(), tuple![2])]).unwrap();
        input.insert("p", tuple![2]);
        assert_eq!(dump(s.database()), scratch(src, &input));
    }

    #[test]
    fn apply_before_bootstrap_is_an_error() {
        let mut s = IncrementalSession::new(EngineConfig::default(), "q(X) :- p(X).").unwrap();
        let err = s.apply(vec![("p".into(), tuple![1])]).unwrap_err();
        assert!(err.message().contains("bootstrapped"), "{err}");
    }
}
