//! Demand-driven evaluation: magic-set / sideways-information-passing
//! rewrite, per-relation statistics, and a cost-based join-order planner
//! for the demand program.
//!
//! ## How demand restricts the fixpoint without changing it
//!
//! The engine's signature guarantee is byte-identity across knob settings,
//! and the directed path earns it structurally rather than by re-sorting:
//! the stratified semi-naive loop runs **exactly the same rules in exactly
//! the same pass order** as the undirected run, with one change — a derived
//! fact is inserted only if the precomputed [`Demand`] keeps it. Because
//! the decision is per *fact* (not per derivation), and demand is closed
//! under rule application (every fact that can participate in deriving a
//! kept fact is itself kept), each predicate's restricted fact sequence is
//! a subsequence of the undirected sequence and contains every fact a query
//! answer can touch. The nested-loop join enumerates answers in
//! lexicographic row-position order, so subsequences in, identical answer
//! sequence out.
//!
//! ## The rewrite
//!
//! `analyze` walks the query and then every (predicate, adornment) pair
//! reachable from it, in the style of cozo's `magic_sets_rewrite` and
//! inputlayer's `sip_rewriting`:
//!
//! - a positive IDB atom with bound argument positions `B` becomes a
//!   *magic rule* `__magic#p#B(bound args) :- <demand source>, <bound
//!   extensional prefix>` and enqueues `(p, B)` for its own rules;
//! - sideways information passes only through literals evaluable at demand
//!   time (extensional atoms connected to a bound variable, `=` chains,
//!   bound comparisons) — derived atoms never bind variables sideways,
//!   which over-approximates demand but keeps the demand program evaluable
//!   up front, before any stratum runs;
//! - anything that cannot be soundly restricted falls back per predicate to
//!   *unrestricted* (derive fully): predicates read under negation and
//!   their transitive rule inputs, atoms with no bound positions, aggregate
//!   head positions (demand propagates through group keys only);
//! - an all-free query (no bound IDB argument anywhere) rewrites to the
//!   identity program: a globally unrestricted [`Demand`].
//!
//! The demand program is pure positive Datalog over the seed fact and the
//! extensional relations it reads, so it is evaluated to fixpoint once by
//! the ordinary engine — after a cost-based planner reorders each magic
//! rule body greedily by estimated cardinality (per-relation row counts and
//! per-column distinct counts). Demand-set insertion order is never
//! observable (sets are only membership-tested), which is what makes the
//! planner safe to apply here and nowhere else.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use vada_common::{QueryMode, Result, Tuple, VadaError};

use crate::ast::{Atom, CmpOp, Expr, HeadTerm, Literal, Program, Rule, Term};
use crate::engine::{CompiledRule, Database, Engine, EngineConfig};

/// Guard cap: distinct adornments per predicate before giving up.
const MAX_ADORNMENTS: usize = 16;
/// Guard cap: total synthesized magic rules before giving up.
const MAX_MAGIC_RULES: usize = 512;

/// The demand-source predicate seeded with one zero-ary fact.
const SEED_PRED: &str = "__magic#__query#";

/// Name of the demand predicate for `pred` adorned on `cols`.
fn magic_name(pred: &str, cols: &[usize]) -> String {
    let mut s = String::with_capacity(pred.len() + 12);
    s.push_str("__magic#");
    s.push_str(pred);
    s.push('#');
    for (i, c) in cols.iter().enumerate() {
        if i > 0 {
            s.push('.');
        }
        s.push_str(&c.to_string());
    }
    s
}

/// Run `f` under a panic guard, surfacing panics as
/// [`VadaError::Parallel`] naming `stage` — the same discipline as
/// [`vada_common::par`], so injected faults in the rewrite and index-build
/// stages fail loudly and identically at every parallelism level.
pub(crate) fn guard_stage<R>(stage: &str, f: impl FnOnce() -> Result<R>) -> Result<R> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => {
            let msg = if let Some(s) = payload.downcast_ref::<&'static str>() {
                *s
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.as_str()
            } else {
                "non-string panic payload"
            };
            Err(VadaError::Parallel(format!("stage `{stage}` panicked: {msg}")))
        }
    }
}

/// What directed evaluation may keep per predicate.
#[derive(Debug)]
enum PredDemand {
    /// Derive fully (negation reads it, or no sound restriction exists).
    Unrestricted,
    /// Keep a fact iff some adornment's demand set contains its projection.
    Restricted(Vec<(Vec<usize>, HashSet<Tuple>)>),
}

/// The result of demand analysis for one query: which facts the directed
/// fixpoint materializes. IDB predicates absent from the map are
/// *undemanded* — the query provably cannot reach them, so their rules
/// derive nothing.
#[derive(Debug)]
pub struct Demand {
    info: HashMap<String, PredDemand>,
    /// Global fallback: behave exactly like the undirected run.
    unrestricted: bool,
    reason: Option<String>,
    magic_rules: usize,
    demand_facts: usize,
}

impl Demand {
    fn fallback(reason: impl Into<String>) -> Demand {
        Demand {
            info: HashMap::new(),
            unrestricted: true,
            reason: Some(reason.into()),
            magic_rules: 0,
            demand_facts: 0,
        }
    }

    /// Whether directed evaluation should insert this derived fact.
    pub fn keeps(&self, pred: &str, t: &Tuple) -> bool {
        if self.unrestricted {
            return true;
        }
        match self.info.get(pred) {
            None => false,
            Some(PredDemand::Unrestricted) => true,
            Some(PredDemand::Restricted(adorns)) => adorns.iter().any(|(cols, set)| {
                cols.iter().all(|&c| c < t.arity()) && set.contains(&t.project(cols))
            }),
        }
    }

    /// Whether this demand is the identity (directed ≡ undirected by
    /// construction): an all-free query, or an analysis fallback.
    pub fn is_unrestricted(&self) -> bool {
        self.unrestricted
    }

    /// Why the analysis fell back to the identity, if it did.
    pub fn fallback_reason(&self) -> Option<&str> {
        self.reason.as_deref()
    }

    /// Predicates with an adornment-restricted demand set, sorted.
    pub fn restricted_preds(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .info
            .iter()
            .filter(|(_, d)| matches!(d, PredDemand::Restricted(_)))
            .map(|(p, _)| p.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// Predicates pinned unrestricted (fully derived), sorted.
    pub fn unrestricted_preds(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .info
            .iter()
            .filter(|(_, d)| matches!(d, PredDemand::Unrestricted))
            .map(|(p, _)| p.as_str())
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of synthesized magic rules.
    pub fn magic_rule_count(&self) -> usize {
        self.magic_rules
    }

    /// Total demand facts across all adornments.
    pub fn demand_fact_count(&self) -> usize {
        self.demand_facts
    }
}

/// The static half of the rewrite: magic program + bookkeeping.
struct Analysis {
    magic: Program,
    adornments: BTreeMap<String, Vec<Vec<usize>>>,
    unrestricted: BTreeSet<String>,
    ext_reads: BTreeSet<String>,
}

struct St<'p> {
    program: &'p Program,
    idb: BTreeSet<&'p str>,
    by_head: BTreeMap<&'p str, Vec<usize>>,
    rules: Vec<Rule>,
    adorn: BTreeMap<String, Vec<Vec<usize>>>,
    unrestricted: BTreeSet<String>,
    ext_reads: BTreeSet<String>,
    work: VecDeque<(String, Vec<usize>)>,
}

impl<'p> St<'p> {
    /// `pred` (and, transitively, every predicate its rules read) must be
    /// derived in full: its facts feed negation, or demand cannot bind any
    /// of its arguments.
    fn mark_unrestricted(&mut self, pred: &str) {
        let mut stack = vec![pred.to_string()];
        while let Some(p) = stack.pop() {
            if !self.idb.contains(p.as_str()) || !self.unrestricted.insert(p.clone()) {
                continue;
            }
            if let Some(ris) = self.by_head.get(p.as_str()) {
                for &ri in ris {
                    let r = &self.program.rules[ri];
                    for q in r.positive_preds().chain(r.negative_preds()) {
                        if self.idb.contains(q) && !self.unrestricted.contains(q) {
                            stack.push(q.to_string());
                        }
                    }
                }
            }
        }
    }
}

fn expr_all_bound(e: &Expr, bound: &BTreeSet<usize>) -> bool {
    let mut vs = BTreeSet::new();
    e.vars(&mut vs);
    vs.iter().all(|v| bound.contains(v))
}

/// Walk one rule under a demand source, passing information sideways
/// through evaluable literals; emits one magic rule per bound IDB atom.
/// Returns whether any IDB atom had a bound position (the all-free test).
fn propagate(
    rule: &Rule,
    source: Atom,
    mut bound: BTreeSet<usize>,
    var_count: usize,
    var_names: Vec<String>,
    st: &mut St<'_>,
) -> std::result::Result<bool, String> {
    let order = CompiledRule::compile(rule, usize::MAX)
        .map_err(|e| format!("unorderable rule `{rule}`: {e}"))?
        .order
        .clone();
    let mut included: Vec<Literal> = vec![Literal::Pos(source)];
    let mut any_bound_idb = false;
    for &li in &order {
        match &rule.body[li] {
            Literal::Cmp(CmpOp::Eq, l, r) => {
                let lb = expr_all_bound(l, &bound);
                let rb = expr_all_bound(r, &bound);
                if lb && rb {
                    included.push(rule.body[li].clone());
                } else if lb {
                    if let Some(v) = r.as_var() {
                        included.push(rule.body[li].clone());
                        bound.insert(v);
                    }
                } else if rb {
                    if let Some(v) = l.as_var() {
                        included.push(rule.body[li].clone());
                        bound.insert(v);
                    }
                }
            }
            Literal::Cmp(_, l, r) => {
                if expr_all_bound(l, &bound) && expr_all_bound(r, &bound) {
                    included.push(rule.body[li].clone());
                }
            }
            Literal::Pos(atom) if !st.idb.contains(atom.pred.as_str()) => {
                // extensional: joinable at demand time, but only include it
                // when connected to a binding (an unconnected atom would be
                // a cross product; skipping it is a sound over-approximation)
                let connected = atom.terms.is_empty()
                    || atom.terms.iter().any(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v, _) => bound.contains(v),
                    });
                if connected {
                    st.ext_reads.insert(atom.pred.clone());
                    included.push(rule.body[li].clone());
                    for t in &atom.terms {
                        if let Term::Var(v, _) = t {
                            bound.insert(*v);
                        }
                    }
                }
            }
            Literal::Pos(atom) => {
                let cols: Vec<usize> = atom
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| match t {
                        Term::Const(_) => true,
                        Term::Var(v, _) => bound.contains(v),
                    })
                    .map(|(i, _)| i)
                    .collect();
                if cols.is_empty() {
                    st.mark_unrestricted(&atom.pred);
                    continue;
                }
                any_bound_idb = true;
                let slot = st.adorn.entry(atom.pred.clone()).or_default();
                if !slot.contains(&cols) {
                    if slot.len() >= MAX_ADORNMENTS {
                        return Err(format!("adornment explosion on `{}`", atom.pred));
                    }
                    slot.push(cols.clone());
                    st.work.push_back((atom.pred.clone(), cols.clone()));
                }
                st.rules.push(Rule {
                    head_pred: magic_name(&atom.pred, &cols),
                    head_terms: cols
                        .iter()
                        .map(|&c| HeadTerm::Term(atom.terms[c].clone()))
                        .collect(),
                    body: included.clone(),
                    var_count,
                    var_names: var_names.clone(),
                });
                if st.rules.len() > MAX_MAGIC_RULES {
                    return Err("magic rule explosion".into());
                }
                // derived atoms never pass bindings sideways: their facts
                // are not available at demand time
            }
            Literal::Neg(atom) => {
                // negation must see the complete relation; restricting it
                // (or anything it is derived from) would flip answers
                if st.idb.contains(atom.pred.as_str()) {
                    st.mark_unrestricted(&atom.pred);
                }
            }
        }
    }
    Ok(any_bound_idb)
}

/// The static rewrite: seed demand from the query's bound arguments and
/// close it over every reachable (predicate, adornment) pair. `Err` is a
/// *fallback*, not a failure — the caller answers with the identity demand.
fn analyze(program: &Program, query: &Rule) -> std::result::Result<Analysis, String> {
    let idb = program.idb_predicates();
    let mut by_head: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (ri, r) in program.rules.iter().enumerate() {
        if !r.is_fact() {
            by_head.entry(r.head_pred.as_str()).or_default().push(ri);
        }
    }
    let mut st = St {
        program,
        idb,
        by_head,
        rules: Vec::new(),
        adorn: BTreeMap::new(),
        unrestricted: BTreeSet::new(),
        ext_reads: BTreeSet::new(),
        work: VecDeque::new(),
    };
    // the seed fact: one zero-ary demand source the query's magic rules join
    st.rules.push(Rule {
        head_pred: SEED_PRED.into(),
        head_terms: vec![],
        body: vec![],
        var_count: 0,
        var_names: vec![],
    });

    let seed_atom = Atom { pred: SEED_PRED.into(), terms: vec![] };
    let any_bound = propagate(
        query,
        seed_atom,
        BTreeSet::new(),
        query.var_count,
        query.var_names.clone(),
        &mut st,
    )?;
    let query_reads_idb = query
        .positive_preds()
        .chain(query.negative_preds())
        .any(|p| st.idb.contains(p));
    if query_reads_idb && !any_bound {
        return Err("all-free query: identity rewrite".into());
    }

    while let Some((pred, cols)) = st.work.pop_front() {
        if st.unrestricted.contains(&pred) {
            continue;
        }
        let Some(ris) = st.by_head.get(pred.as_str()).cloned() else { continue };
        for ri in ris {
            let r = &program.rules[ri];
            if cols.iter().any(|&c| c >= r.head_terms.len()) {
                // this rule's head arity cannot produce facts matching the
                // adornment's shape; its emissions are judged (and its body
                // demanded) via other adornments only
                continue;
            }
            let mut var_names = r.var_names.clone();
            let mut var_count = r.var_count;
            let mut terms = Vec::with_capacity(cols.len());
            let mut bound = BTreeSet::new();
            for &c in &cols {
                match &r.head_terms[c] {
                    HeadTerm::Term(t) => {
                        if let Term::Var(v, _) = t {
                            bound.insert(*v);
                        }
                        terms.push(t.clone());
                    }
                    HeadTerm::Agg(..) => {
                        // demand cannot propagate through an aggregate value;
                        // match it with a fresh wildcard (group keys only)
                        let name = format!("__w{var_count}");
                        terms.push(Term::Var(var_count, name.clone()));
                        var_names.push(name);
                        var_count += 1;
                    }
                }
            }
            let source = Atom { pred: magic_name(&pred, &cols), terms };
            propagate(r, source, bound, var_count, var_names, &mut st)?;
        }
    }

    Ok(Analysis {
        magic: Program { rules: st.rules },
        adornments: st.adorn,
        unrestricted: st.unrestricted,
        ext_reads: st.ext_reads,
    })
}

/// Per-relation statistics for the demand-program planner.
struct Stats {
    per_pred: HashMap<String, PredStats>,
}

struct PredStats {
    rows: usize,
    /// Distinct value count per column (up to the widest fact's arity).
    distinct: Vec<usize>,
}

impl Stats {
    fn collect(db: &Database, preds: &BTreeSet<String>) -> Stats {
        let mut per_pred = HashMap::new();
        for pred in preds {
            let facts = db.facts(pred);
            let arity = facts.iter().map(|t| t.arity()).max().unwrap_or(0);
            let mut seen: Vec<HashSet<&vada_common::Value>> = vec![HashSet::new(); arity];
            for t in facts {
                for (c, v) in t.values().iter().enumerate() {
                    seen[c].insert(v);
                }
            }
            per_pred.insert(
                pred.clone(),
                PredStats { rows: facts.len(), distinct: seen.iter().map(|s| s.len()).collect() },
            );
        }
        Stats { per_pred }
    }

    /// Estimated rows of `atom` given the bound variable set: row count
    /// divided by the distinct counts of its bound columns.
    fn estimate(&self, atom: &Atom, bound: &BTreeSet<usize>) -> f64 {
        let Some(ps) = self.per_pred.get(&atom.pred) else { return 0.0 };
        let mut est = ps.rows as f64;
        for (c, t) in atom.terms.iter().enumerate() {
            let is_bound = match t {
                Term::Const(_) => true,
                Term::Var(v, _) => bound.contains(v),
            };
            if is_bound {
                let d = ps.distinct.get(c).copied().unwrap_or(1).max(1);
                est /= d as f64;
            }
        }
        est
    }
}

/// Cost-based join-order planning for one magic rule: the demand-source
/// atom stays first, the extensional atoms follow greedily by estimated
/// cardinality (ties broken by source position), comparisons trail and are
/// hoisted by the ordinary rule compiler once their variables bind. Only
/// demand rules are planned this way — their fact *order* is never
/// observable — while query and program rules keep the canonical order the
/// byte-identity guarantee is argued over.
fn plan_rule(r: &Rule, stats: &Stats) -> Rule {
    if r.body.len() <= 2 {
        return r.clone();
    }
    let mut body = vec![r.body[0].clone()];
    let mut bound = BTreeSet::new();
    if let Literal::Pos(a) = &r.body[0] {
        a.vars(&mut bound);
    }
    let mut atoms: Vec<(usize, &Atom)> = Vec::new();
    let mut cmps: Vec<&Literal> = Vec::new();
    for (i, lit) in r.body[1..].iter().enumerate() {
        match lit {
            Literal::Pos(a) => atoms.push((i, a)),
            other => cmps.push(other),
        }
    }
    while !atoms.is_empty() {
        let mut best = 0usize;
        let mut best_est = f64::INFINITY;
        for (k, (_, a)) in atoms.iter().enumerate() {
            let est = stats.estimate(a, &bound);
            if est < best_est {
                best_est = est;
                best = k;
            }
        }
        let (_, a) = atoms.remove(best);
        a.vars(&mut bound);
        body.push(Literal::Pos(a.clone()));
    }
    body.extend(cmps.into_iter().cloned());
    Rule { body, ..r.clone() }
}

/// Compute the [`Demand`] for `query` over `program` and the extensional
/// `db`. Analysis shortfalls fall back to the identity demand (directed ≡
/// undirected by construction) — only injected rewrite-stage panics
/// surface as errors, matching the parallel-stage failure discipline.
pub(crate) fn demand_for(
    engine: &Engine,
    program: &Program,
    db: &Database,
    query: &Rule,
) -> Result<Demand> {
    let fault = engine.config().inject_fault;
    let analysis = guard_stage("datalog/magic_rewrite", || {
        if fault == Some("magic-rewrite") {
            panic!("injected magic-rewrite fault");
        }
        Ok(analyze(program, query))
    })?;
    let analysis = match analysis {
        Ok(a) => a,
        Err(reason) => return Ok(Demand::fallback(reason)),
    };
    if analysis.adornments.is_empty() && analysis.unrestricted.is_empty() {
        // the query reads no derived predicate positively or negatively:
        // nothing needs deriving at all
        return Ok(Demand {
            info: HashMap::new(),
            unrestricted: false,
            reason: None,
            magic_rules: analysis.magic.rules.len(),
            demand_facts: 0,
        });
    }

    // demand database: the extensional relations the magic bodies read —
    // from the input database AND from the program's own ground fact-rules
    // (the main run loads those only after demand is computed)
    let mut mdb = Database::new();
    for pred in &analysis.ext_reads {
        for t in db.facts(pred) {
            mdb.insert(pred, t.clone());
        }
    }
    for rule in &program.rules {
        if rule.is_fact() && analysis.ext_reads.contains(&rule.head_pred) {
            let t: Tuple = rule
                .head_terms
                .iter()
                .filter_map(|ht| match ht {
                    HeadTerm::Term(Term::Const(v)) => Some(v.clone()),
                    _ => None,
                })
                .collect();
            mdb.insert(&rule.head_pred, t);
        }
    }

    // plan the demand program against per-relation statistics and run it
    let stats = Stats::collect(&mdb, &analysis.ext_reads);
    let planned = Program {
        rules: analysis.magic.rules.iter().map(|r| plan_rule(r, &stats)).collect(),
    };
    let mcfg = EngineConfig {
        query_mode: QueryMode::Undirected,
        inject_fault: None,
        ..engine.config().clone()
    };
    let magic_db = match Engine::new(mcfg).run(&planned, mdb) {
        Ok(d) => d,
        Err(e) => return Ok(Demand::fallback(format!("demand evaluation failed: {e}"))),
    };

    let mut info: HashMap<String, PredDemand> = HashMap::new();
    let mut demand_facts = 0usize;
    for (pred, adorns) in &analysis.adornments {
        if analysis.unrestricted.contains(pred) {
            continue;
        }
        let mut v = Vec::with_capacity(adorns.len());
        for cols in adorns {
            let set: HashSet<Tuple> =
                magic_db.facts(&magic_name(pred, cols)).iter().cloned().collect();
            demand_facts += set.len();
            v.push((cols.clone(), set));
        }
        info.insert(pred.clone(), PredDemand::Restricted(v));
    }
    for pred in &analysis.unrestricted {
        info.insert(pred.clone(), PredDemand::Unrestricted);
    }
    Ok(Demand {
        info,
        unrestricted: false,
        reason: None,
        magic_rules: analysis.magic.rules.len(),
        demand_facts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use vada_common::tuple;

    fn demand(src: &str, q: &str, db: &Database) -> Demand {
        let program = parse_program(src).unwrap();
        let query = parse_query(q).unwrap();
        demand_for(&Engine::default(), &program, db, &query).unwrap()
    }

    #[test]
    fn bound_query_restricts_recursive_predicate() {
        let mut db = Database::new();
        for i in 0..10i64 {
            db.insert("edge", tuple![i, i + 1]);
        }
        let d = demand(
            "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).",
            "tc(3, W)",
            &db,
        );
        assert!(!d.is_unrestricted());
        assert_eq!(d.restricted_preds(), vec!["tc"]);
        // demand reaches only the source constant — one demand fact
        assert_eq!(d.demand_fact_count(), 1);
        assert!(d.keeps("tc", &tuple![3, 7]));
        assert!(!d.keeps("tc", &tuple![4, 7]));
    }

    #[test]
    fn sideways_demand_follows_extensional_joins() {
        // par is extensional: the recursive magic rule joins it to walk up
        let mut db = Database::new();
        db.insert("par", tuple!["a", "x"]);
        db.insert("par", tuple!["b", "x"]);
        db.insert("par", tuple!["c", "y"]);
        let d = demand(
            r#"sg(X, X) :- par(X, _). sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP)."#,
            r#"sg("a", W)"#,
            &db,
        );
        assert_eq!(d.restricted_preds(), vec!["sg"]);
        // demand covers "a" and its ancestor "x"
        assert!(d.keeps("sg", &tuple!["a", "b"]));
        assert!(d.keeps("sg", &tuple!["x", "y"]));
        assert!(!d.keeps("sg", &tuple!["c", "c"]));
    }

    #[test]
    fn all_free_query_is_identity() {
        let d = demand("p(X) :- q(X).", "p(X)", &Database::new());
        assert!(d.is_unrestricted());
        assert!(d.fallback_reason().unwrap().contains("all-free"));
        assert!(d.keeps("anything", &tuple![1]));
    }

    #[test]
    fn negation_pins_read_predicates_unrestricted() {
        let d = demand(
            r#"
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            dead(X) :- node(X), not reach(1, X).
            probe(X) :- dead(X).
            "#,
            "probe(7)",
            &Database::new(),
        );
        assert!(!d.is_unrestricted());
        // dead is demanded but read... probe(7) binds dead's argument; dead's
        // body negates reach, so reach (and nothing else) must derive fully
        assert_eq!(d.unrestricted_preds(), vec!["reach"]);
        assert!(d.keeps("reach", &tuple![99, 99]));
        assert!(d.keeps("dead", &tuple![7]));
        assert!(!d.keeps("dead", &tuple![8]));
    }

    #[test]
    fn undemanded_predicates_derive_nothing() {
        let d = demand(
            "p(X) :- e(X). unrelated(X) :- e(X).",
            "p(1)",
            &Database::new(),
        );
        assert!(!d.keeps("unrelated", &tuple![1]));
        assert!(d.keeps("p", &tuple![1]));
    }

    #[test]
    fn query_over_extensional_only_demands_nothing() {
        let d = demand("p(X) :- e(X).", "e(1)", &Database::new());
        assert!(!d.is_unrestricted());
        assert!(!d.keeps("p", &tuple![1]));
    }

    #[test]
    fn aggregate_demand_propagates_group_keys_only() {
        let mut db = Database::new();
        db.insert("item", tuple!["a", 1]);
        db.insert("item", tuple!["a", 2]);
        db.insert("item", tuple!["b", 3]);
        let d = demand(
            "total(G, sum(P)) :- item(G, P). big(G) :- total(G, T), T > 1.",
            r#"big("a")"#,
            &db,
        );
        // total is demanded on its group key; the aggregate value position
        // is matched by a wildcard
        assert!(d.keeps("total", &tuple!["a", 999]));
        assert!(!d.keeps("total", &tuple!["b", 3]));
    }

    #[test]
    fn planner_orders_selective_atoms_first() {
        let mut db = Database::new();
        for i in 0..100i64 {
            db.insert("wide", tuple![i % 2, i]);
        }
        db.insert("narrow", tuple![0, 7]);
        let mut preds = BTreeSet::new();
        preds.insert("wide".to_string());
        preds.insert("narrow".to_string());
        let stats = Stats::collect(&db, &preds);
        let program = parse_program(
            "seed(1). m(A, B) :- seed(S), wide(S, A), narrow(S, B).",
        )
        .unwrap();
        let planned = plan_rule(&program.rules[1], &stats);
        // narrow (1 row) must be joined before wide (100 rows)
        let pos: Vec<&str> = planned
            .body
            .iter()
            .filter_map(|l| match l {
                Literal::Pos(a) => Some(a.pred.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(pos, vec!["seed", "narrow", "wide"]);
    }

    #[test]
    fn injected_rewrite_fault_surfaces_as_parallel_error() {
        let program = parse_program("p(X) :- e(X).").unwrap();
        let query = parse_query("p(1)").unwrap();
        let engine = Engine::new(EngineConfig {
            inject_fault: Some("magic-rewrite"),
            ..EngineConfig::default()
        });
        let err = demand_for(&engine, &program, &Database::new(), &query).unwrap_err();
        assert_eq!(err.kind(), "parallel", "{err}");
        assert!(err.message().contains("datalog/magic_rewrite"), "{err}");
    }
}
