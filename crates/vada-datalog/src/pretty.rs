//! Rendering helpers for fact databases (used by the demo harness and the
//! orchestration trace).

use crate::engine::Database;

/// Render the facts of `pred` as one line per fact, sorted, e.g.
/// `tc(1, 2)`.
pub fn facts_to_lines(db: &Database, pred: &str) -> Vec<String> {
    let mut lines: Vec<String> = db
        .facts(pred)
        .iter()
        .map(|t| {
            let args: Vec<String> = t
                .iter()
                .map(|v| match v {
                    vada_common::Value::Str(s) => format!("{s:?}"),
                    other => other.to_string(),
                })
                .collect();
            format!("{pred}({})", args.join(", "))
        })
        .collect();
    lines.sort();
    lines
}

/// Summarise a database as `pred: count` lines, sorted by predicate.
pub fn summary(db: &Database) -> String {
    let mut out = String::new();
    for pred in db.predicates() {
        out.push_str(&format!("{pred}: {}\n", db.facts(pred).len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::tuple;

    #[test]
    fn renders_sorted_facts() {
        let mut db = Database::new();
        db.insert("p", tuple![2, "b"]);
        db.insert("p", tuple![1, "a"]);
        let lines = facts_to_lines(&db, "p");
        assert_eq!(lines, vec![r#"p(1, "a")"#, r#"p(2, "b")"#]);
    }

    #[test]
    fn summary_lists_counts() {
        let mut db = Database::new();
        db.insert("b", tuple![1]);
        db.insert("a", tuple![1]);
        db.insert("a", tuple![2]);
        assert_eq!(summary(&db), "a: 2\nb: 1\n");
    }
}
