//! Tokeniser for the Vadalog-style surface syntax.

use std::fmt;

use vada_common::{Result, VadaError};

/// A lexical token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind/payload.
    pub kind: TokenKind,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier starting with a lower-case letter: predicate name or
    /// symbolic constant.
    Ident(String),
    /// Identifier starting with an upper-case letter or `_`: a variable.
    Variable(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Quoted string literal (escapes processed).
    Str(String),
    /// `:-`
    Implies,
    /// `?-`
    Query,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `not`
    Not,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%%` is not a token; `mod` keyword maps here.
    Percent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Variable(s) => write!(f, "variable `{s}`"),
            TokenKind::Int(i) => write!(f, "integer `{i}`"),
            TokenKind::Float(x) => write!(f, "float `{x}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Implies => write!(f, "`:-`"),
            TokenKind::Query => write!(f, "`?-`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Not => write!(f, "`not`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Ne => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Percent => write!(f, "`mod`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Tokenise a source string. `%` starts a line comment.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! push {
        ($kind:expr, $l:expr, $c:expr) => {
            tokens.push(Token { kind: $kind, line: $l, col: $c })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '%' => {
                // line comment
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        col = 1;
                        break;
                    }
                }
            }
            '(' => {
                chars.next();
                col += 1;
                push!(TokenKind::LParen, tl, tc);
            }
            ')' => {
                chars.next();
                col += 1;
                push!(TokenKind::RParen, tl, tc);
            }
            ',' => {
                chars.next();
                col += 1;
                push!(TokenKind::Comma, tl, tc);
            }
            '+' => {
                chars.next();
                col += 1;
                push!(TokenKind::Plus, tl, tc);
            }
            '*' => {
                chars.next();
                col += 1;
                push!(TokenKind::Star, tl, tc);
            }
            '/' => {
                chars.next();
                col += 1;
                push!(TokenKind::Slash, tl, tc);
            }
            '=' => {
                chars.next();
                col += 1;
                push!(TokenKind::Eq, tl, tc);
            }
            '!' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::Ne, tl, tc);
                } else {
                    return Err(VadaError::Parse(format!("{tl}:{tc}: lone `!`")));
                }
            }
            '<' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::Le, tl, tc);
                } else {
                    push!(TokenKind::Lt, tl, tc);
                }
            }
            '>' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'=') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::Ge, tl, tc);
                } else {
                    push!(TokenKind::Gt, tl, tc);
                }
            }
            ':' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'-') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::Implies, tl, tc);
                } else {
                    return Err(VadaError::Parse(format!("{tl}:{tc}: lone `:`")));
                }
            }
            '?' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'-') {
                    chars.next();
                    col += 1;
                    push!(TokenKind::Query, tl, tc);
                } else {
                    return Err(VadaError::Parse(format!("{tl}:{tc}: lone `?`")));
                }
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    col += 1;
                    match c {
                        '"' => {
                            closed = true;
                            break;
                        }
                        '\\' => match chars.next() {
                            Some('n') => {
                                s.push('\n');
                                col += 1;
                            }
                            Some('t') => {
                                s.push('\t');
                                col += 1;
                            }
                            Some('"') => {
                                s.push('"');
                                col += 1;
                            }
                            Some('\\') => {
                                s.push('\\');
                                col += 1;
                            }
                            other => {
                                return Err(VadaError::Parse(format!(
                                    "{line}:{col}: bad escape {other:?}"
                                )))
                            }
                        },
                        '\n' => {
                            return Err(VadaError::Parse(format!(
                                "{tl}:{tc}: unterminated string"
                            )))
                        }
                        c => s.push(c),
                    }
                }
                if !closed {
                    return Err(VadaError::Parse(format!("{tl}:{tc}: unterminated string")));
                }
                push!(TokenKind::Str(s), tl, tc);
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        s.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                // float? needs digit after the dot to disambiguate `1.` (end
                // of fact) from `1.5`.
                let mut is_float = false;
                if chars.peek() == Some(&'.') {
                    let mut clone = chars.clone();
                    clone.next();
                    if clone.peek().is_some_and(|c| c.is_ascii_digit()) {
                        is_float = true;
                        s.push('.');
                        chars.next();
                        col += 1;
                        while let Some(&c) = chars.peek() {
                            if c.is_ascii_digit() {
                                s.push(c);
                                chars.next();
                                col += 1;
                            } else {
                                break;
                            }
                        }
                    }
                }
                if is_float {
                    let f: f64 = s
                        .parse()
                        .map_err(|_| VadaError::Parse(format!("{tl}:{tc}: bad float `{s}`")))?;
                    push!(TokenKind::Float(f), tl, tc);
                } else {
                    let i: i64 = s
                        .parse()
                        .map_err(|_| VadaError::Parse(format!("{tl}:{tc}: bad int `{s}`")))?;
                    push!(TokenKind::Int(i), tl, tc);
                }
            }
            '-' => {
                // could be a negative number literal or minus operator; the
                // parser disambiguates, we emit Minus.
                chars.next();
                col += 1;
                push!(TokenKind::Minus, tl, tc);
            }
            '.' => {
                chars.next();
                col += 1;
                push!(TokenKind::Dot, tl, tc);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let kind = if s == "not" {
                    TokenKind::Not
                } else if s == "mod" {
                    TokenKind::Percent
                } else if s.starts_with(|c: char| c.is_uppercase() || c == '_') {
                    TokenKind::Variable(s)
                } else {
                    TokenKind::Ident(s)
                };
                push!(kind, tl, tc);
            }
            other => {
                return Err(VadaError::Parse(format!(
                    "{tl}:{tc}: unexpected character `{other}`"
                )))
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, line, col });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_rule() {
        let k = kinds("tc(X, Z) :- tc(X, Y), edge(Y, Z).");
        assert_eq!(k[0], TokenKind::Ident("tc".into()));
        assert_eq!(k[1], TokenKind::LParen);
        assert_eq!(k[2], TokenKind::Variable("X".into()));
        assert!(k.contains(&TokenKind::Implies));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_literals() {
        let k = kinds(r#"p(1, 2.5, "hi\n", true)."#);
        assert!(k.contains(&TokenKind::Int(1)));
        assert!(k.contains(&TokenKind::Float(2.5)));
        assert!(k.contains(&TokenKind::Str("hi\n".into())));
        // `true` lexes as an identifier; the parser maps it to a bool const
        assert!(k.contains(&TokenKind::Ident("true".into())));
    }

    #[test]
    fn distinguishes_float_dot_from_period() {
        let k = kinds("p(1).");
        assert!(k.contains(&TokenKind::Int(1)));
        assert!(k.contains(&TokenKind::Dot));
        let k = kinds("p(1.5).");
        assert!(k.contains(&TokenKind::Float(1.5)));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("% hello\np(1). % trailing\n");
        assert_eq!(k.len(), 6); // p ( 1 ) . eof
    }

    #[test]
    fn comparison_operators() {
        let k = kinds("X <= Y, X != Z, X >= W, X < V, X > U");
        assert!(k.contains(&TokenKind::Le));
        assert!(k.contains(&TokenKind::Ne));
        assert!(k.contains(&TokenKind::Ge));
        assert!(k.contains(&TokenKind::Lt));
        assert!(k.contains(&TokenKind::Gt));
    }

    #[test]
    fn underscore_is_variable() {
        let k = kinds("p(_, _X)");
        assert_eq!(k[2], TokenKind::Variable("_".into()));
        assert_eq!(k[4], TokenKind::Variable("_X".into()));
    }

    #[test]
    fn errors_carry_position() {
        let err = lex("p(@)").unwrap_err();
        assert!(err.to_string().contains("1:3"));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("p(\"abc).").is_err());
    }
}
