//! Skolem terms for existential rule heads (the Datalog± part).
//!
//! A head variable that never occurs in the body is existential: the rule
//! asserts that *some* value exists. We invent it as a deterministic skolem
//! constant derived from the rule, the variable, and the frontier binding
//! (the universally quantified head variables). Determinism makes the chase
//! idempotent — re-deriving the same frontier binding re-creates the *same*
//! constant, so the fixpoint terminates whenever the skolem chase does.
//!
//! Skolems created from bindings that already contain skolems get a higher
//! *depth*; a configurable depth cap aborts divergent (non-warded) programs
//! with a clear error instead of running forever. Vadalog guarantees
//! termination syntactically through wardedness; the cap is our dynamic
//! approximation of that guarantee.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use vada_common::{Result, VadaError, Value};

/// Prefix identifying skolem constants in the value domain.
pub const SKOLEM_PREFIX: &str = "_:sk";

/// Whether a value is a skolem constant.
pub fn is_skolem(v: &Value) -> bool {
    matches!(v, Value::Str(s) if s.starts_with(SKOLEM_PREFIX))
}

/// The nesting depth of a value: 0 for ordinary values, `d` for a skolem
/// created from a frontier of maximum depth `d - 1`.
pub fn depth(v: &Value) -> usize {
    match v {
        Value::Str(s) if s.starts_with(SKOLEM_PREFIX) => {
            // format: _:sk:<depth>:<tag>:<hash>
            s.split(':')
                .nth(2)
                .and_then(|d| d.parse().ok())
                .unwrap_or(1)
        }
        _ => 0,
    }
}

/// Create the skolem constant for existential variable `var_name` of rule
/// `rule_idx` under the given frontier binding.
///
/// Fails with [`VadaError::Eval`] when the new constant would exceed
/// `max_depth` — the chase termination guard.
pub fn make_skolem(
    rule_idx: usize,
    var_name: &str,
    frontier: &[Value],
    max_depth: usize,
) -> Result<Value> {
    let d = frontier.iter().map(depth).max().unwrap_or(0) + 1;
    if d > max_depth {
        return Err(VadaError::Eval(format!(
            "chase termination guard: skolem depth {d} exceeds the maximum {max_depth} \
             (rule {rule_idx}, existential variable {var_name}); the program is likely \
             not warded — existential values feed back into their own generating rule"
        )));
    }
    let mut h = DefaultHasher::new();
    for v in frontier {
        v.hash(&mut h);
    }
    let hash = h.finish();
    Ok(Value::str(format!(
        "{SKOLEM_PREFIX}:{d}:r{rule_idx}_{var_name}:{hash:016x}"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skolems_are_deterministic() {
        let f = [Value::Int(1), Value::str("a")];
        let a = make_skolem(3, "Z", &f, 8).unwrap();
        let b = make_skolem(3, "Z", &f, 8).unwrap();
        assert_eq!(a, b);
        assert!(is_skolem(&a));
    }

    #[test]
    fn different_frontiers_differ() {
        let a = make_skolem(3, "Z", &[Value::Int(1)], 8).unwrap();
        let b = make_skolem(3, "Z", &[Value::Int(2)], 8).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn different_rules_or_vars_differ() {
        let f = [Value::Int(1)];
        let a = make_skolem(1, "Z", &f, 8).unwrap();
        let b = make_skolem(2, "Z", &f, 8).unwrap();
        let c = make_skolem(1, "W", &f, 8).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn depth_increments_through_nesting() {
        let s1 = make_skolem(0, "Z", &[Value::Int(7)], 8).unwrap();
        assert_eq!(depth(&s1), 1);
        let s2 = make_skolem(0, "Z", std::slice::from_ref(&s1), 8).unwrap();
        assert_eq!(depth(&s2), 2);
        assert_eq!(depth(&Value::Int(3)), 0);
    }

    #[test]
    fn guard_trips_at_cap() {
        let mut v = Value::Int(0);
        for _ in 0..3 {
            v = make_skolem(0, "Z", &[v.clone()], 3).unwrap();
        }
        assert!(make_skolem(0, "Z", &[v], 3).is_err());
    }
}
