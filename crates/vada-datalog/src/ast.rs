//! Abstract syntax for Datalog± programs.
//!
//! Variables are rule-local: after parsing, every rule's variables are
//! numbered densely from 0 so the engine can use flat binding arrays.

use std::collections::BTreeSet;
use std::fmt;

use vada_common::Value;

/// A rule-local variable index (dense, assigned by the parser per rule).
pub type VarId = usize;

/// A term: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// Variable, with its source-level name kept for display.
    Var(VarId, String),
    /// Constant value.
    Const(Value),
}

impl Term {
    /// The variable id, if this is a variable.
    pub fn var(&self) -> Option<VarId> {
        match self {
            Term::Var(v, _) => Some(*v),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(_, name) => write!(f, "{name}"),
            Term::Const(Value::Str(s)) => write!(f, "{s:?}"),
            Term::Const(v) => write!(f, "{v}"),
        }
    }
}

/// Arithmetic expression used in comparison/assignment literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A leaf term.
    Term(Term),
    /// Binary arithmetic.
    BinOp(ArithOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Collect variable ids occurring in the expression.
    pub fn vars(&self, out: &mut BTreeSet<VarId>) {
        match self {
            Expr::Term(Term::Var(v, _)) => {
                out.insert(*v);
            }
            Expr::Term(Term::Const(_)) => {}
            Expr::BinOp(_, a, b) => {
                a.vars(out);
                b.vars(out);
            }
        }
    }

    /// True if the expression is a bare variable.
    pub fn as_var(&self) -> Option<VarId> {
        match self {
            Expr::Term(Term::Var(v, _)) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Term(t) => write!(f, "{t}"),
            Expr::BinOp(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// Addition (numeric) / concatenation (strings).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float semantics unless both ints divide evenly).
    Div,
    /// Remainder.
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        })
    }
}

/// Comparison operators for builtin literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=` — unification: if one side is an unbound variable it is assigned.
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A predicate atom `pred(t1, ..., tn)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// Predicate name.
    pub pred: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Collect variable ids occurring in the atom.
    pub fn vars(&self, out: &mut BTreeSet<VarId>) {
        for t in &self.terms {
            if let Term::Var(v, _) = t {
                out.insert(*v);
            }
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Literal {
    /// Positive atom.
    Pos(Atom),
    /// Negated atom (`not p(...)`). Requires stratification and all its
    /// variables bound by positive literals (safety).
    Neg(Atom),
    /// Comparison / assignment between expressions.
    Cmp(CmpOp, Expr, Expr),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => write!(f, "{a}"),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(op, a, b) => write!(f, "{a} {op} {b}"),
        }
    }
}

/// Aggregate functions usable in rule heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of (distinct group-contributing) bindings.
    Count,
    /// Sum of a numeric variable.
    Sum,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Arithmetic mean.
    Avg,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        })
    }
}

/// A head argument: a plain term or an aggregate over a body variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HeadTerm {
    /// Plain term (variable or constant).
    Term(Term),
    /// Aggregate `func(Var)` computed per group of the plain head terms.
    Agg(AggFunc, VarId, String),
}

impl fmt::Display for HeadTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeadTerm::Term(t) => write!(f, "{t}"),
            HeadTerm::Agg(func, _, name) => write!(f, "{func}({name})"),
        }
    }
}

/// A rule `head :- body.` A rule with an empty body and all-constant head is
/// a fact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Head predicate name.
    pub head_pred: String,
    /// Head arguments.
    pub head_terms: Vec<HeadTerm>,
    /// Body literals, in source order.
    pub body: Vec<Literal>,
    /// Number of distinct variables in the rule (ids are `0..var_count`).
    pub var_count: usize,
    /// Display names of variables, indexed by [`VarId`].
    pub var_names: Vec<String>,
}

impl Rule {
    /// Whether this rule is a ground fact.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
            && self
                .head_terms
                .iter()
                .all(|t| matches!(t, HeadTerm::Term(Term::Const(_))))
    }

    /// Variables bound by positive body literals.
    pub fn positive_vars(&self) -> BTreeSet<VarId> {
        let mut out = BTreeSet::new();
        for lit in &self.body {
            if let Literal::Pos(a) = lit {
                a.vars(&mut out);
            }
        }
        out
    }

    /// Head variables that appear nowhere in the body — these are
    /// *existential* and will be skolemised by the engine.
    pub fn existential_vars(&self) -> BTreeSet<VarId> {
        let mut body_vars = BTreeSet::new();
        for lit in &self.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => a.vars(&mut body_vars),
                Literal::Cmp(_, l, r) => {
                    l.vars(&mut body_vars);
                    r.vars(&mut body_vars);
                }
            }
        }
        let mut out = BTreeSet::new();
        for t in &self.head_terms {
            if let HeadTerm::Term(Term::Var(v, _)) = t {
                if !body_vars.contains(v) {
                    out.insert(*v);
                }
            }
        }
        out
    }

    /// Whether the head uses any aggregate.
    pub fn has_aggregate(&self) -> bool {
        self.head_terms
            .iter()
            .any(|t| matches!(t, HeadTerm::Agg(..)))
    }

    /// Predicates of positive body literals.
    pub fn positive_preds(&self) -> impl Iterator<Item = &str> {
        self.body.iter().filter_map(|l| match l {
            Literal::Pos(a) => Some(a.pred.as_str()),
            _ => None,
        })
    }

    /// Predicates of negative body literals.
    pub fn negative_preds(&self) -> impl Iterator<Item = &str> {
        self.body.iter().filter_map(|l| match l {
            Literal::Neg(a) => Some(a.pred.as_str()),
            _ => None,
        })
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head_pred)?;
        for (i, t) in self.head_terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A parsed program: rules (facts included) in source order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Program {
    /// All rules, facts included.
    pub rules: Vec<Rule>,
}

impl Program {
    /// All predicates defined in rule heads (the IDB).
    pub fn idb_predicates(&self) -> BTreeSet<&str> {
        self.rules
            .iter()
            .filter(|r| !r.is_fact())
            .map(|r| r.head_pred.as_str())
            .collect()
    }

    /// All predicates mentioned anywhere.
    pub fn all_predicates(&self) -> BTreeSet<&str> {
        let mut out = BTreeSet::new();
        for r in &self.rules {
            out.insert(r.head_pred.as_str());
            for l in &r.body {
                match l {
                    Literal::Pos(a) | Literal::Neg(a) => {
                        out.insert(a.pred.as_str());
                    }
                    Literal::Cmp(..) => {}
                }
            }
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(id: usize, name: &str) -> Term {
        Term::Var(id, name.into())
    }

    #[test]
    fn existential_vars_detected() {
        // p(X, Z) :- q(X).
        let rule = Rule {
            head_pred: "p".into(),
            head_terms: vec![
                HeadTerm::Term(var(0, "X")),
                HeadTerm::Term(var(1, "Z")),
            ],
            body: vec![Literal::Pos(Atom { pred: "q".into(), terms: vec![var(0, "X")] })],
            var_count: 2,
            var_names: vec!["X".into(), "Z".into()],
        };
        assert_eq!(rule.existential_vars().into_iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn fact_detection() {
        let fact = Rule {
            head_pred: "p".into(),
            head_terms: vec![HeadTerm::Term(Term::Const(Value::Int(1)))],
            body: vec![],
            var_count: 0,
            var_names: vec![],
        };
        assert!(fact.is_fact());
    }

    #[test]
    fn display_round_readable() {
        let rule = Rule {
            head_pred: "tc".into(),
            head_terms: vec![
                HeadTerm::Term(var(0, "X")),
                HeadTerm::Term(var(1, "Z")),
            ],
            body: vec![
                Literal::Pos(Atom {
                    pred: "tc".into(),
                    terms: vec![var(0, "X"), var(2, "Y")],
                }),
                Literal::Pos(Atom {
                    pred: "edge".into(),
                    terms: vec![var(2, "Y"), var(1, "Z")],
                }),
            ],
            var_count: 3,
            var_names: vec!["X".into(), "Z".into(), "Y".into()],
        };
        assert_eq!(rule.to_string(), "tc(X, Z) :- tc(X, Y), edge(Y, Z).");
    }
}
