//! Program analysis: predicate dependency graph and stratification.
//!
//! Negation and aggregation must be *stratified*: a predicate may not depend
//! on its own negation/aggregate through any cycle. We compute stratum
//! numbers with the classic fixpoint algorithm (Ullman): positive
//! dependencies require `stratum(head) >= stratum(body)`, negative and
//! aggregate dependencies require `stratum(head) >= stratum(body) + 1`; if a
//! stratum number exceeds the predicate count the program is rejected.

use std::collections::{BTreeMap, BTreeSet};

use vada_common::{Result, VadaError};

use crate::ast::Program;

/// The result of stratifying a program.
#[derive(Debug, Clone)]
pub struct Stratification {
    /// Stratum number per predicate.
    pub pred_stratum: BTreeMap<String, usize>,
    /// Rule indices grouped by stratum, ascending.
    pub strata_rules: Vec<Vec<usize>>,
    /// Number of strata.
    pub stratum_count: usize,
}

impl Stratification {
    /// The stratum of `pred` (predicates never mentioned default to 0).
    pub fn stratum_of(&self, pred: &str) -> usize {
        self.pred_stratum.get(pred).copied().unwrap_or(0)
    }

    /// Head predicates that are recursive within `stratum` — i.e. appear in
    /// a positive body literal of some rule of the same stratum.
    pub fn recursive_preds(&self, program: &Program, stratum: usize) -> BTreeSet<String> {
        let mut heads: BTreeSet<&str> = BTreeSet::new();
        for &ri in &self.strata_rules[stratum] {
            heads.insert(program.rules[ri].head_pred.as_str());
        }
        let mut rec = BTreeSet::new();
        for &ri in &self.strata_rules[stratum] {
            for p in program.rules[ri].positive_preds() {
                if heads.contains(p) {
                    rec.insert(p.to_string());
                }
            }
        }
        rec
    }
}

/// Stratify `program`, or fail with [`VadaError::Program`] if negation or
/// aggregation occurs through recursion.
pub fn stratify(program: &Program) -> Result<Stratification> {
    let preds: Vec<&str> = program.all_predicates().into_iter().collect();
    let n = preds.len().max(1);
    let mut stratum: BTreeMap<String, usize> =
        preds.iter().map(|p| (p.to_string(), 0)).collect();

    // fixpoint
    loop {
        let mut changed = false;
        for rule in &program.rules {
            if rule.is_fact() {
                continue;
            }
            let head = stratum.get(&rule.head_pred).copied().unwrap_or(0);
            let mut need = head;
            let aggregated = rule.has_aggregate();
            for p in rule.positive_preds() {
                let s = stratum.get(p).copied().unwrap_or(0);
                // aggregate rules must see their full input: treat positive
                // deps of aggregate rules like negative deps
                need = need.max(if aggregated { s + 1 } else { s });
            }
            for p in rule.negative_preds() {
                let s = stratum.get(p).copied().unwrap_or(0);
                need = need.max(s + 1);
            }
            if need > head {
                if need > n {
                    return Err(VadaError::Program(format!(
                        "program is not stratifiable: predicate `{}` depends on its own negation or aggregate (via rule `{rule}`)",
                        rule.head_pred
                    )));
                }
                stratum.insert(rule.head_pred.clone(), need);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let stratum_count = stratum.values().copied().max().unwrap_or(0) + 1;
    let mut strata_rules: Vec<Vec<usize>> = vec![Vec::new(); stratum_count];
    for (i, rule) in program.rules.iter().enumerate() {
        if rule.is_fact() {
            continue;
        }
        let s = stratum.get(&rule.head_pred).copied().unwrap_or(0);
        strata_rules[s].push(i);
    }

    Ok(Stratification { pred_stratum: stratum, strata_rules, stratum_count })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn positive_recursion_single_stratum() {
        let p = parse_program(
            "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).",
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of("tc"), 0);
        assert_eq!(s.stratum_count, 1);
        assert!(s.recursive_preds(&p, 0).contains("tc"));
    }

    #[test]
    fn negation_pushes_to_higher_stratum() {
        let p = parse_program(
            r#"
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            unreachable(X, Y) :- node(X), node(Y), not reach(X, Y).
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_of("reach"), 0);
        assert_eq!(s.stratum_of("unreachable"), 1);
    }

    #[test]
    fn unstratifiable_rejected() {
        let p = parse_program(
            "p(X) :- q(X), not r(X). r(X) :- q(X), not p(X).",
        )
        .unwrap();
        let err = stratify(&p).unwrap_err();
        assert!(err.to_string().contains("not stratifiable"));
    }

    #[test]
    fn aggregates_act_like_negation() {
        let p = parse_program(
            r#"
            total(G, sum(P)) :- item(G, P).
            big(G) :- total(G, T), T > 100.
            "#,
        )
        .unwrap();
        let s = stratify(&p).unwrap();
        assert!(s.stratum_of("total") > s.stratum_of("item"));
        assert!(s.stratum_of("big") >= s.stratum_of("total"));
    }

    #[test]
    fn recursive_aggregate_rejected() {
        let p = parse_program("t(X, count(Y)) :- t(Y, X).").unwrap();
        assert!(stratify(&p).is_err());
    }

    #[test]
    fn facts_do_not_affect_strata() {
        let p = parse_program("p(1). q(X) :- p(X).").unwrap();
        let s = stratify(&p).unwrap();
        assert_eq!(s.stratum_count, 1);
        assert_eq!(s.strata_rules[0].len(), 1);
    }
}
