//! The cross-query cache layer for directed evaluation: persistent hash
//! indexes ([`IndexCache`]) and maintained demanded views ([`QueryCache`]).
//!
//! Directed evaluation (see [`crate::magic`]) pays off *within* one query;
//! this module makes it pay off *across* queries:
//!
//! - An [`IndexCache`] keeps an [`IndexStore`] alive between
//!   `run_directed`/`eval_query` calls. Soundness rests on the
//!   shrink-aware, epoch-keyed refresh in [`crate::engine`]: an index
//!   whose predicate only grew since the last query is extended in
//!   O(change); one whose predicate shrank or changed reorder epoch is
//!   rebuilt — so a predicate that regrows to its old length with
//!   different rows can never serve stale row ids. Callers that hand the
//!   cache a *fresh* database each time (rather than mutating one in
//!   place) must key reuse on the knowledge-base journal identity via
//!   [`IndexCache::ensure`], because a fresh database restarts every
//!   reorder epoch at zero.
//!
//! - A [`QueryCache`] maintains one materialization per (program
//!   fingerprint, query) pair, the way [`IncrementalSession`] maintains a
//!   full program: a repeated query on an unchanged base is answered from
//!   the cached view with **zero stratum passes and zero index builds**; a
//!   query after a row-level edit replays the delta through the session's
//!   order-safety machinery in O(change) (falling back to a full
//!   re-derivation, reason recorded, when a step is not provably
//!   order-safe); and a journal-lineage divergence or an unexplainable
//!   delta discards the view and rebuilds — never a stale answer.
//!
//! ### Byte-identity
//!
//! A cached answer is pinned byte-identical to a cold directed run by
//! composition: the session's materialization is byte-identical to a
//! from-scratch full run (the `incremental_equivalence` contract), and
//! evaluating a query over the full materialization is byte-identical to
//! evaluating it over the demanded one (the `query_equivalence`
//! contract). The root differential suites pin the composed claim across
//! the `{threads × shards × incremental × wal × magic}` matrix.
//!
//! Note the view deliberately materializes the *full* program fixpoint,
//! not the demanded restriction: under row-level edits the demand set can
//! grow, and newly demanded facts would interleave anywhere in a cold
//! demanded order — maintaining the restricted view append-only is not
//! order-safe. Maintaining the full view costs more memory but makes every
//! [`IncrementalSession`] order-safety argument carry over unchanged.
//!
//! ### Counters
//!
//! Each [`QueryCache::query`] call increments exactly one of
//! `magic.cache.hits` (answered from a cached view, warm or maintained),
//! `magic.cache.misses` (cold build of a new view), or
//! `magic.cache.invalidations` (a cached view was discarded — lineage
//! divergence, pruned journal window, or an unexplainable delta — and
//! rebuilt).

use vada_common::obs::{key as obs_key, Obs};
use vada_common::{Result, Tuple};

use crate::ast::{Program, Rule};
use crate::engine::{Database, Engine, EngineConfig, IndexStore};
use crate::incremental::{DeltaMode, IncrementalSession};
use crate::parser::parse_query;

/// Cap on retained views; the least recently used is evicted beyond it.
pub const DEFAULT_VIEW_CAPACITY: usize = 16;

/// A persistent [`IndexStore`] that survives across engine runs.
///
/// Reuse contract: sound whenever the databases handed to successive runs
/// agree on every common prefix of every predicate's fact list *or* the
/// epoch/shrink checks can detect the difference. Two ways to hold up the
/// contract:
///
/// - mutate one long-lived [`Database`] in place (its reorder epochs
///   record every shrink/rewrite — the knowledge-base dependency view
///   does this), or
/// - rebuild the database deterministically from the same source state,
///   and call [`IndexCache::ensure`] with the source's (journal lineage,
///   version) so the cache resets whenever that state changed.
#[derive(Default)]
pub struct IndexCache {
    store: IndexStore,
    /// The (journal lineage, version) the indexes were built under, for
    /// callers that rebuild their database per run.
    key: Option<(u64, u64)>,
}

impl std::fmt::Debug for IndexCache {
    // IndexStore is an internal map of row-id postings — summarize rather
    // than dump it.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IndexCache")
            .field("warm", &self.is_warm())
            .field("key", &self.key)
            .finish()
    }
}

impl IndexCache {
    /// A fresh, empty cache.
    pub fn new() -> IndexCache {
        IndexCache::default()
    }

    /// Whether any index has been built.
    pub fn is_warm(&self) -> bool {
        !self.store.is_empty()
    }

    /// Drop every cached index (the backing database was rebuilt from
    /// scratch, so reorder epochs restarted and staleness is no longer
    /// detectable). Returns whether anything was dropped.
    pub fn reset(&mut self) -> bool {
        let warm = self.is_warm();
        self.store = IndexStore::default();
        self.key = None;
        warm
    }

    /// Validate the cache against the journal identity of the state the
    /// caller's database is rebuilt from: a mismatch drops every index.
    /// Returns `true` when the cache was already valid (a warm reuse).
    pub fn ensure(&mut self, lineage: u64, version: u64) -> bool {
        if self.key == Some((lineage, version)) {
            return true;
        }
        self.reset();
        self.key = Some((lineage, version));
        false
    }

    pub(crate) fn store_mut(&mut self) -> &mut IndexStore {
        &mut self.store
    }
}

impl Engine {
    /// [`Engine::run_directed`] with a persistent [`IndexCache`]: the
    /// shared hash indexes survive into the next run instead of dying
    /// with this one. Output is byte-identical to the uncached call; see
    /// [`IndexCache`] for the reuse contract.
    pub fn run_directed_cached(
        &self,
        program: &Program,
        db: Database,
        query: &Rule,
        cache: &mut IndexCache,
    ) -> Result<Database> {
        self.run_directed_with(program, db, query, Some(cache.store_mut()))
    }

    /// [`Engine::eval_query`] with a persistent [`IndexCache`]: registers
    /// the query's lookup shapes, refreshes the surviving indexes
    /// (O(change) for appends, rebuild for shrinks/rewrites), and probes
    /// them instead of building lazy per-call indexes. Returns the
    /// answers plus whether the refresh had to index anything — `false`
    /// means the query was served without any `datalog/index_build` work.
    pub fn eval_query_cached(
        &self,
        query: &Rule,
        db: &Database,
        cache: &mut IndexCache,
    ) -> Result<(Vec<Tuple>, bool)> {
        self.eval_query_with_store(query, db, cache.store_mut())
    }
}

/// One journal-ordered step of a row-level delta.
#[derive(Debug, Clone)]
pub enum DeltaBatch {
    /// Extensional facts appended, in arrival order.
    Append(Vec<(String, Tuple)>),
    /// Extensional facts removed.
    Remove(Vec<(String, Tuple)>),
}

/// What changed in the underlying base since a cached view's version —
/// the caller's translation of its delta journal.
#[derive(Debug, Clone)]
pub enum CacheDelta {
    /// Nothing the program can see changed (e.g. metadata-only edits):
    /// the view is current as-is.
    Unchanged,
    /// Row-level changes, as append/remove steps in journal order.
    Rows(Vec<DeltaBatch>),
    /// The caller cannot prove what changed (pruned journal window,
    /// relation-level rewrite): the view must be rebuilt from scratch.
    Unknown,
}

/// One maintained materialization: the incremental session holding the
/// full-program fixpoint, the persistent indexes its answers are probed
/// through, and the answer list itself.
struct CachedView {
    program: String,
    query: String,
    session: IncrementalSession,
    index: IndexCache,
    answers: Vec<Tuple>,
    lineage: u64,
    version: u64,
}

/// Demanded-view cache: (program fingerprint, bound-pattern query) →
/// maintained materialization. See the module docs for the contract.
pub struct QueryCache {
    config: EngineConfig,
    /// Views in least→most recently used order.
    views: Vec<CachedView>,
    capacity: usize,
}

impl QueryCache {
    /// A cache whose sessions and evaluations run under `config` (the
    /// config's registry receives the `magic.cache.*` counters).
    pub fn new(config: EngineConfig) -> QueryCache {
        QueryCache { config, views: Vec::new(), capacity: DEFAULT_VIEW_CAPACITY }
    }

    /// [`QueryCache::new`] retaining at most `capacity` views.
    pub fn with_capacity(config: EngineConfig, capacity: usize) -> QueryCache {
        QueryCache { config, views: Vec::new(), capacity: capacity.max(1) }
    }

    /// Number of views currently retained.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether no view is retained.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    fn obs(&self) -> &Obs {
        &self.config.obs
    }

    /// Answer `query` over `program` at base state (`lineage`,
    /// `version`), reusing and maintaining a cached view when possible.
    ///
    /// `delta` explains how the base moved since this view's recorded
    /// version (ignored on a cold build or when the version matches);
    /// `build_input` produces the extensional database for a cold build
    /// and is only invoked when one is needed.
    pub fn query(
        &mut self,
        program: &str,
        query: &str,
        lineage: u64,
        version: u64,
        delta: CacheDelta,
        build_input: impl FnOnce() -> Result<Database>,
    ) -> Result<Vec<Tuple>> {
        let q = parse_query(query)?;
        // one span per lookup; the resolution (exactly one of hit / miss /
        // invalidation, mirroring the counter contract) is attached where
        // the matching counter is tallied, and a cold build's session and
        // engine spans nest underneath
        let obs = self.obs().clone();
        let span = obs.span("cache/query");
        if let Some(pos) =
            self.views.iter().position(|v| v.program == program && v.query == query)
        {
            // MRU: move to the back
            let mut view = self.views.remove(pos);
            if view.lineage != lineage {
                // same version numbers may cover a diverged history
                span.attr("outcome", "invalidation");
                self.obs().incr(obs_key::MAGIC_CACHE_INVALIDATIONS);
            } else if view.version == version {
                span.attr("outcome", "hit");
                self.obs().incr(obs_key::MAGIC_CACHE_HITS);
                let answers = view.answers.clone();
                self.views.push(view);
                return Ok(answers);
            } else {
                match delta {
                    CacheDelta::Unchanged => {
                        view.version = version;
                        span.attr("outcome", "hit");
                        self.obs().incr(obs_key::MAGIC_CACHE_HITS);
                        let answers = view.answers.clone();
                        self.views.push(view);
                        return Ok(answers);
                    }
                    CacheDelta::Rows(batches) => {
                        for batch in batches {
                            // a failed step poisons the session: the view
                            // is dropped so the next query rebuilds clean
                            match batch {
                                DeltaBatch::Append(facts) => view.session.apply(facts)?,
                                DeltaBatch::Remove(facts) => view.session.retract(facts)?,
                            };
                            // only an in-place incremental step keeps the
                            // database object (reorder epochs then account
                            // for every row that moved); a full fallback
                            // swaps in a freshly derived database whose
                            // epochs restart at zero, where a surviving
                            // index would alias stale row ids undetectably
                            let in_place = view
                                .session
                                .last_outcome()
                                .is_some_and(|o| o.mode == DeltaMode::Incremental);
                            if !in_place {
                                view.index.reset();
                            }
                        }
                        let engine = Engine::new(self.config.clone());
                        let (answers, _) =
                            engine.eval_query_cached(&q, view.session.database(), &mut view.index)?;
                        view.answers = answers.clone();
                        view.version = version;
                        span.attr("outcome", "hit");
                        self.obs().incr(obs_key::MAGIC_CACHE_HITS);
                        self.views.push(view);
                        return Ok(answers);
                    }
                    CacheDelta::Unknown => {
                        span.attr("outcome", "invalidation");
                        self.obs().incr(obs_key::MAGIC_CACHE_INVALIDATIONS);
                    }
                }
            }
        } else {
            span.attr("outcome", "miss");
            self.obs().incr(obs_key::MAGIC_CACHE_MISSES);
        }

        // cold build: full-program session, then answer through the
        // view's own persistent indexes
        let mut session = IncrementalSession::new(self.config.clone(), program)?;
        session.run_full(build_input()?)?;
        let mut index = IndexCache::new();
        let engine = Engine::new(self.config.clone());
        let (answers, _) = engine.eval_query_cached(&q, session.database(), &mut index)?;
        self.views.push(CachedView {
            program: program.to_string(),
            query: query.to_string(),
            session,
            index,
            answers: answers.clone(),
            lineage,
            version,
        });
        if self.views.len() > self.capacity {
            self.views.remove(0);
        }
        Ok(answers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use vada_common::obs::key as obs_key;
    use vada_common::tuple;

    const PROGRAM: &str = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).";

    fn chain_db(n: i64) -> Database {
        let mut db = Database::new();
        for i in 0..n {
            db.insert("edge", tuple![i, i + 1]);
        }
        db
    }

    fn cold_directed_over(program: &str, query: &str, db: Database) -> Vec<Tuple> {
        let program = parse_program(program).unwrap();
        let q = parse_query(query).unwrap();
        let engine = Engine::default();
        let full = engine.run_directed(&program, db, &q).unwrap();
        engine.eval_query(&q, &full).unwrap()
    }

    fn cold_directed(query: &str, db: Database) -> Vec<Tuple> {
        cold_directed_over(PROGRAM, query, db)
    }

    fn cache_with_obs() -> (QueryCache, Obs) {
        let obs = Obs::enabled();
        let config = EngineConfig { obs: obs.clone(), ..Default::default() };
        (QueryCache::new(config), obs)
    }

    #[test]
    fn repeated_query_is_a_pure_hit_with_zero_evaluation_work() {
        let (mut cache, obs) = cache_with_obs();
        let q = "tc(0, Y)";
        let first = cache.query(PROGRAM, q, 7, 1, CacheDelta::Unchanged, || Ok(chain_db(30))).unwrap();
        assert_eq!(first, cold_directed(q, chain_db(30)));
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_MISSES), 1);

        let passes = obs.get(obs_key::STRATUM_PASSES);
        let builds = obs.get(obs_key::INDEX_BUILDS);
        let again = cache
            .query(PROGRAM, q, 7, 1, CacheDelta::Unchanged, || panic!("must not rebuild"))
            .unwrap();
        assert_eq!(again, first);
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_HITS), 1);
        // the acceptance contract: a repeat on an unchanged base does zero
        // stratum passes and zero index-build work
        assert_eq!(obs.get(obs_key::STRATUM_PASSES), passes);
        assert_eq!(obs.get(obs_key::INDEX_BUILDS), builds);
    }

    // non-recursive: row deltas stay on the session's semi-naive fast
    // path (recursive predicates fall back by the order-safety rules —
    // still byte-identical, just not O(change))
    const FLAT: &str = "res(X, Z) :- e(X, Y), lab(Y, Z).";

    fn flat_db(n: i64) -> Database {
        let mut db = Database::new();
        for j in 0..7i64 {
            db.insert("lab", tuple![j, format!("l{j}")]);
        }
        for i in 0..n {
            db.insert("e", tuple![i, i % 7]);
        }
        db
    }

    #[test]
    fn row_deltas_maintain_the_view_in_o_change() {
        let (mut cache, obs) = cache_with_obs();
        let q = "res(5, Z)";
        cache.query(FLAT, q, 7, 1, CacheDelta::Unchanged, || Ok(flat_db(64))).unwrap();

        // a 64-row append maintains the cached view instead of rebuilding
        let appended: Vec<(String, Tuple)> =
            (64..128).map(|i| ("e".to_string(), tuple![i, i % 7])).collect();
        let mut db2 = flat_db(128);
        let expect = cold_directed_over(FLAT, q, db2.clone());
        let fallbacks = obs.get(obs_key::INC_FALLBACK);
        let got = cache
            .query(
                FLAT,
                q,
                7,
                2,
                CacheDelta::Rows(vec![DeltaBatch::Append(appended)]),
                || panic!("row delta must not rebuild"),
            )
            .unwrap();
        assert_eq!(got, expect);
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_HITS), 1);
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_MISSES), 1);
        // O(change): the append rode the fast path, no full re-derivation
        assert_eq!(obs.get(obs_key::INC_FALLBACK), fallbacks);
        assert!(obs.get(obs_key::INC_INCREMENTAL) >= 1);

        // removals ride the session's retraction machinery
        let removed = vec![("e".to_string(), tuple![5, 5])];
        db2.remove("e", &tuple![5, 5]);
        let expect = cold_directed_over(FLAT, q, db2);
        let got = cache
            .query(
                FLAT,
                q,
                7,
                3,
                CacheDelta::Rows(vec![DeltaBatch::Remove(removed)]),
                || panic!("row delta must not rebuild"),
            )
            .unwrap();
        assert_eq!(got, expect);
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_HITS), 2);
    }

    #[test]
    fn lineage_divergence_and_unknown_deltas_force_a_clean_rebuild() {
        let (mut cache, obs) = cache_with_obs();
        let q = "tc(0, Y)";
        cache.query(PROGRAM, q, 7, 1, CacheDelta::Unchanged, || Ok(chain_db(5))).unwrap();

        // same version numbers, different lineage: the history diverged
        let other = chain_db(4);
        let expect = cold_directed(q, other.clone());
        let got = cache
            .query(PROGRAM, q, 8, 1, CacheDelta::Unchanged, || Ok(other))
            .unwrap();
        assert_eq!(got, expect);
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_INVALIDATIONS), 1);

        // a pruned journal window (Unknown) rebuilds rather than guessing
        let bigger = chain_db(9);
        let expect = cold_directed(q, bigger.clone());
        let got = cache.query(PROGRAM, q, 8, 5, CacheDelta::Unknown, || Ok(bigger)).unwrap();
        assert_eq!(got, expect);
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_INVALIDATIONS), 2);
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_MISSES), 1, "rebuilds count as invalidations");
    }

    #[test]
    fn distinct_queries_and_programs_get_distinct_views() {
        let (mut cache, obs) = cache_with_obs();
        cache.query(PROGRAM, "tc(0, Y)", 7, 1, CacheDelta::Unchanged, || Ok(chain_db(6))).unwrap();
        cache.query(PROGRAM, "tc(3, Y)", 7, 1, CacheDelta::Unchanged, || Ok(chain_db(6))).unwrap();
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_MISSES), 2);
        assert_eq!(cache.len(), 2);
        let rows = cache
            .query(PROGRAM, "tc(3, Y)", 7, 1, CacheDelta::Unchanged, || panic!("warm"))
            .unwrap();
        assert_eq!(rows, cold_directed("tc(3, Y)", chain_db(6)));
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_HITS), 1);
    }

    #[test]
    fn capacity_evicts_the_least_recently_used_view() {
        let obs = Obs::enabled();
        let config = EngineConfig { obs: obs.clone(), ..Default::default() };
        let mut cache = QueryCache::with_capacity(config, 2);
        for q in ["tc(0, Y)", "tc(1, Y)", "tc(2, Y)"] {
            cache.query(PROGRAM, q, 7, 1, CacheDelta::Unchanged, || Ok(chain_db(5))).unwrap();
        }
        assert_eq!(cache.len(), 2);
        // the oldest view was evicted: asking again is a miss
        cache.query(PROGRAM, "tc(0, Y)", 7, 1, CacheDelta::Unchanged, || Ok(chain_db(5))).unwrap();
        assert_eq!(obs.get(obs_key::MAGIC_CACHE_MISSES), 4);
    }

    #[test]
    fn index_cache_ensure_keys_on_lineage_and_version() {
        let mut cache = IndexCache::new();
        assert!(!cache.ensure(1, 1));
        let db = chain_db(8);
        let q = parse_query("edge(3, Y)").unwrap();
        let engine = Engine::default();
        let (rows, worked) = engine.eval_query_cached(&q, &db, &mut cache).unwrap();
        assert_eq!(rows, vec![tuple![4]]);
        assert!(worked);
        assert!(cache.is_warm());

        // same identity: the indexes are served warm
        assert!(cache.ensure(1, 1));
        let (rows, worked) = engine.eval_query_cached(&q, &db, &mut cache).unwrap();
        assert_eq!(rows, vec![tuple![4]]);
        assert!(!worked, "warm reuse must skip index building");

        // new version: a rebuilt database may reuse nothing
        assert!(!cache.ensure(1, 2));
        assert!(!cache.is_warm());
    }

    #[test]
    fn run_directed_cached_matches_cold_runs_across_edits() {
        let program = parse_program(PROGRAM).unwrap();
        let q = parse_query("tc(0, Y)").unwrap();
        let engine = Engine::default();
        let mut cache = IndexCache::new();
        for n in [10i64, 20, 15] {
            // a fresh input database per run, keyed like a KB rebuild
            cache.ensure(1, n as u64);
            let cold = engine.run_directed(&program, chain_db(n), &q).unwrap();
            let cached = engine.run_directed_cached(&program, chain_db(n), &q, &mut cache).unwrap();
            assert_eq!(cached.facts("tc"), cold.facts("tc"), "n={n}");
            // reuse at the same key stays identical
            cache.ensure(1, n as u64);
            let again = engine.run_directed_cached(&program, chain_db(n), &q, &mut cache).unwrap();
            assert_eq!(again.facts("tc"), cold.facts("tc"), "n={n} (warm)");
        }
    }
}
