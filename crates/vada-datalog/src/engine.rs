//! Fixpoint evaluation: stratified, semi-naive, with aggregates and a
//! guarded skolem chase for existential rules.
//!
//! ## Algorithm
//!
//! 1. `stratify` (see [`crate::analysis`]) the program.
//! 2. Load ground facts.
//! 3. Per stratum (ascending): one *initial pass* evaluates every rule
//!    against the current database; then **semi-naive iteration** re-fires
//!    only rules with a recursive positive literal, once per occurrence of a
//!    recursive predicate, with that occurrence restricted to the previous
//!    iteration's delta.
//! 4. Aggregate rules run in the initial pass only — stratification
//!    guarantees their inputs live in strictly lower strata.
//!
//! Join orders are compiled per rule with a greedy ordering that places
//! comparisons and negations as soon as their variables are bound, and hash
//! indexes on the bound positions of each positive literal are built lazily
//! per pass.

use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap, HashSet};

use vada_common::obs::{key as obs_key, Obs};
use vada_common::par::{self, Parallelism};
use vada_common::sharding::{assign_shards, merge_in_order, rows_by_shard, Sharding};
use vada_common::{HashPartitioner, QueryMode, Result, Tuple, VadaError, Value};

use crate::analysis::stratify;
use crate::ast::{CmpOp, HeadTerm, Literal, Program, Rule, Term};
use crate::builtins::{apply_cmp, eval_expr, resolve, Binding};
use crate::magic::{self, Demand};
use crate::skolem;

/// A deduplicated, insertion-ordered set of facts for one predicate.
#[derive(Debug, Clone, Default)]
pub struct FactSet {
    tuples: Vec<Tuple>,
    set: HashSet<Tuple>,
}

impl FactSet {
    /// Insert a fact; returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        if self.set.insert(t.clone()) {
            self.tuples.push(t);
            true
        } else {
            false
        }
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.set.contains(t)
    }

    /// Remove a fact, preserving the insertion order of the rest; returns
    /// `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if self.set.remove(t) {
            let pos = self.tuples.iter().position(|x| x == t).expect("set and vec agree");
            self.tuples.remove(pos);
            true
        } else {
            false
        }
    }

    /// Remove every fact in `gone` in one pass, preserving the insertion
    /// order of the rest; returns how many were present and removed.
    pub fn remove_all(&mut self, gone: &HashSet<Tuple>) -> usize {
        let before = self.tuples.len();
        self.tuples.retain(|t| !gone.contains(t));
        self.set.retain(|t| !gone.contains(t));
        before - self.tuples.len()
    }

    /// Facts in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }
}

/// A fact database: predicate name → fact set.
#[derive(Debug, Clone, Default)]
pub struct Database {
    rels: HashMap<String, FactSet>,
    /// Per-predicate *reorder epoch*: bumped by every mutation that can
    /// shrink or rewrite a predicate's row-id space (removals, clears,
    /// wholesale replacement) — never by inserts, which only append. A
    /// shared index records the epoch it was built against, so an index
    /// that survives across mutations (see [`crate::cache::IndexCache`])
    /// can tell "rows were appended" (extend in O(change)) from "row ids
    /// moved" (rebuild), even when the predicate regrows to its old
    /// length. Kept outside [`FactSet`] deliberately: `clear_predicate`
    /// drops the fact set entirely, and the epoch must survive that.
    epochs: HashMap<String, u64>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Insert a fact; returns `true` if new.
    pub fn insert(&mut self, pred: &str, t: Tuple) -> bool {
        self.rels.entry(pred.to_string()).or_default().insert(t)
    }

    /// Whether the fact is present.
    pub fn contains(&self, pred: &str, t: &Tuple) -> bool {
        self.rels.get(pred).is_some_and(|fs| fs.contains(t))
    }

    /// Remove a fact, preserving the insertion order of the remaining facts
    /// of the predicate; returns `true` if it was present.
    pub fn remove(&mut self, pred: &str, t: &Tuple) -> bool {
        let removed = self.rels.get_mut(pred).is_some_and(|fs| fs.remove(t));
        if removed {
            self.bump_epoch(pred);
        }
        removed
    }

    /// Remove every listed fact of one predicate in a single pass,
    /// preserving the insertion order of the rest; returns how many were
    /// present and removed.
    pub fn remove_facts(&mut self, pred: &str, gone: &HashSet<Tuple>) -> usize {
        let removed = self.rels.get_mut(pred).map_or(0, |fs| fs.remove_all(gone));
        if removed > 0 {
            self.bump_epoch(pred);
        }
        removed
    }

    /// Drop every fact of one predicate. Used by the knowledge-base
    /// dependency-view patcher to refresh a predicate group in place:
    /// clearing and re-inserting from current state reproduces exactly the
    /// fact order a from-scratch build would have, because insertion order
    /// within a predicate is first-insert order.
    pub fn clear_predicate(&mut self, pred: &str) {
        if self.rels.remove(pred).is_some() {
            self.bump_epoch(pred);
        }
    }

    /// The predicate's reorder epoch; 0 until a shrinking/rewriting
    /// mutation first touches it.
    pub(crate) fn epoch(&self, pred: &str) -> u64 {
        self.epochs.get(pred).copied().unwrap_or(0)
    }

    fn bump_epoch(&mut self, pred: &str) {
        *self.epochs.entry(pred.to_string()).or_insert(0) += 1;
    }

    /// Facts for a predicate (empty slice if unknown).
    pub fn facts(&self, pred: &str) -> &[Tuple] {
        self.rels.get(pred).map(|fs| fs.tuples()).unwrap_or(&[])
    }

    /// The fact set for a predicate, if any.
    pub fn fact_set(&self, pred: &str) -> Option<&FactSet> {
        self.rels.get(pred)
    }

    /// Predicate names, sorted (deterministic iteration).
    pub fn predicates(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.rels.keys().map(|s| s.as_str()).collect();
        v.sort_unstable();
        v
    }

    /// Total number of facts across all predicates.
    pub fn total_facts(&self) -> usize {
        self.rels.values().map(|fs| fs.len()).sum()
    }

    /// Bulk-load all tuples of a [`vada_common::Relation`] under its name.
    pub fn insert_relation(&mut self, rel: &vada_common::Relation) {
        let fs = self.rels.entry(rel.name().to_string()).or_default();
        for t in rel.iter() {
            fs.insert(t.clone());
        }
    }

    /// [`Database::insert_relation`] over a sharded extensional scan: rows
    /// are assigned to shards by the stable whole-tuple hash, each shard
    /// clones its rows as one scheduling unit (stage `datalog/shard_load`),
    /// and the per-shard outputs merge back into relation row order before
    /// insertion — so the resulting fact set *and its insertion order* are
    /// byte-identical to the monolithic load at any shard count.
    /// [`Sharding::Off`] delegates outright.
    pub fn insert_relation_sharded(
        &mut self,
        rel: &vada_common::Relation,
        sharding: Sharding,
        par: Parallelism,
    ) -> Result<()> {
        if !sharding.is_sharded() {
            self.insert_relation(rel);
            return Ok(());
        }
        let n = sharding.shard_count();
        let assignment =
            assign_shards(par, "datalog/shard_load_assign", rel.tuples(), &HashPartitioner, n)?;
        let by_shard = rows_by_shard(&assignment, n);
        let per_shard = par::par_shards(par, "datalog/shard_load", n, |s| {
            Ok(by_shard[s]
                .iter()
                .map(|&row| rel.tuples()[row].clone())
                .collect::<Vec<Tuple>>())
        })?;
        let fs = self.rels.entry(rel.name().to_string()).or_default();
        for t in merge_in_order(&assignment, per_shard) {
            fs.insert(t);
        }
        Ok(())
    }

    /// Merge another database into this one.
    pub fn merge(&mut self, other: &Database) {
        for (pred, fs) in &other.rels {
            let dst = self.rels.entry(pred.clone()).or_default();
            for t in fs.tuples() {
                dst.insert(t.clone());
            }
        }
    }

    /// Replace the fact set of one predicate wholesale. Used by the
    /// incremental layer to re-establish the scratch insertion order of a
    /// multi-rule head after a delta pass; never exposed publicly because
    /// arbitrary replacement would break the append-only order reasoning.
    pub(crate) fn set_fact_set(&mut self, pred: &str, fs: FactSet) {
        self.rels.insert(pred.to_string(), fs);
        // replacement gives no prefix guarantee, so row ids may have moved
        self.bump_epoch(pred);
    }
}

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Per-stratum iteration cap (defends against bugs; semi-naive
    /// terminates on finite domains regardless).
    pub max_iterations: usize,
    /// Skolem nesting cap — the chase termination guard.
    pub max_skolem_depth: usize,
    /// Total derived-fact cap.
    pub max_facts: usize,
    /// Worker threads for evaluating independent rules of a stratum.
    /// Derived facts, their insertion order, and errors are identical at
    /// every level (see [`vada_common::par`]); defaults to the
    /// `VADA_THREADS` override.
    pub parallelism: Parallelism,
    /// How [`Engine::run_query`] answers a stand-alone query: undirected
    /// (full fixpoint) or directed (magic-set demand restriction, see
    /// [`crate::magic`]). Answers are byte-identical either way; defaults
    /// to the `VADA_MAGIC` override.
    pub query_mode: QueryMode,
    /// Test-only fault injection: `Some("magic-rewrite")` panics inside the
    /// demand-rewrite stage, `Some("index-build")` inside the shared-index
    /// refresh. Both surface as [`VadaError::Parallel`] naming the stage,
    /// exactly like a worker panic at any parallelism level.
    pub inject_fault: Option<&'static str>,
    /// Counter registry for evaluation telemetry (`datalog.*`, `magic.*`,
    /// `par.*`). Defaults to the disabled stub — a single branch per
    /// counter site — and is threaded in by the owning layer (`Wrangler`,
    /// sessions, the bench harness); an embedded config must not open its
    /// own export sink.
    pub obs: Obs,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_iterations: 100_000,
            max_skolem_depth: 12,
            max_facts: 50_000_000,
            parallelism: Parallelism::default(),
            query_mode: QueryMode::default(),
            inject_fault: None,
            obs: Obs::disabled(),
        }
    }
}

/// The Datalog± evaluation engine.
#[derive(Debug, Default)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// An engine with the given configuration.
    pub fn new(config: EngineConfig) -> Engine {
        Engine { config }
    }

    /// Evaluate `program` starting from `db` (extensional facts); returns
    /// the database extended with all derived facts.
    pub fn run(&self, program: &Program, db: Database) -> Result<Database> {
        self.run_impl(program, db, None, None)
    }

    /// Demand-driven evaluation: compute the [`Demand`] a query's bound
    /// arguments seed (see [`crate::magic`]) and materialize only the
    /// demanded portion of the fixpoint. Per query, the result is pinned
    /// byte-identical to [`Engine::run`] — kept fact sequences are
    /// subsequences of the full run's, and every fact a query answer can
    /// touch is kept — so `eval_query` over either database returns the
    /// same answers in the same order.
    pub fn run_directed(&self, program: &Program, db: Database, query: &Rule) -> Result<Database> {
        self.run_directed_with(program, db, query, None)
    }

    /// [`Engine::run_directed`] with an optional *persistent*
    /// [`IndexStore`] (see [`crate::cache::IndexCache`]): the shared hash
    /// indexes survive into the caller's next run instead of dying with
    /// this one. Output is unaffected — a surviving index is extended or
    /// rebuilt by `refresh` exactly as a fresh one would be populated.
    pub(crate) fn run_directed_with(
        &self,
        program: &Program,
        db: Database,
        query: &Rule,
        store: Option<&mut IndexStore>,
    ) -> Result<Database> {
        let demand = magic::demand_for(self, program, &db, query)?;
        let obs = &self.config.obs;
        if demand.is_unrestricted() {
            obs.incr(obs_key::MAGIC_UNRESTRICTED);
        } else {
            obs.incr(obs_key::MAGIC_APPLIED);
            obs.add(obs_key::MAGIC_RULES, demand.magic_rule_count() as u64);
            obs.add(obs_key::MAGIC_DEMAND_FACTS, demand.demand_fact_count() as u64);
        }
        self.run_impl(program, db, Some(&demand), store)
    }

    /// Answer a stand-alone query over `program` + `db`, honouring
    /// [`EngineConfig::query_mode`]. An empty program short-circuits to
    /// [`Engine::eval_query`] against `db` as-is (no clone, no fixpoint) —
    /// the knowledge-base dependency view takes this path.
    pub fn run_query(&self, program: &Program, db: &Database, query: &Rule) -> Result<Vec<Tuple>> {
        if program.rules.is_empty() {
            return self.eval_query(query, db);
        }
        let full = match self.config.query_mode {
            QueryMode::Undirected => self.run(program, db.clone())?,
            QueryMode::Directed => self.run_directed(program, db.clone(), query)?,
        };
        self.eval_query(query, &full)
    }

    /// The [`Demand`] this engine would evaluate `query` under — exposed
    /// for the property suites and the `datalog_magic_vs_full` benchmark.
    pub fn demand(&self, program: &Program, db: &Database, query: &Rule) -> Result<Demand> {
        magic::demand_for(self, program, db, query)
    }

    fn run_impl(
        &self,
        program: &Program,
        mut db: Database,
        demand: Option<&Demand>,
        external: Option<&mut IndexStore>,
    ) -> Result<Database> {
        let strat = stratify(program)?;
        let fault = self.config.inject_fault;
        let obs = &self.config.obs;
        // shared hash indexes over the growing database, registered from
        // each stratum's compiled lookup shapes and refreshed incrementally
        // before every parallel batch; identical to the per-pass lazy
        // indexes by construction, so it only changes wall-clock. A caller
        // may pass in a store that outlives the run (the cross-query index
        // cache); `refresh` extends or rebuilds its surviving indexes
        // against this run's database, so reuse is output-invariant too.
        let mut local = IndexStore::default();
        let store: &mut IndexStore = match external {
            Some(s) => s,
            None => &mut local,
        };
        store.obs = obs.clone();

        // ground facts
        for rule in &program.rules {
            if rule.is_fact() {
                let t: Tuple = rule
                    .head_terms
                    .iter()
                    .map(|ht| match ht {
                        HeadTerm::Term(Term::Const(v)) => v.clone(),
                        _ => unreachable!("is_fact guarantees constant terms"),
                    })
                    .collect();
                db.insert(&rule.head_pred, t);
            }
        }

        // one run-level span so stratum children group under their
        // evaluation, wherever the engine was invoked from
        let run_span = obs.span("datalog/run");
        run_span.attr("strata", strat.stratum_count);
        run_span.attr("mode", if demand.is_some() { "directed" } else { "undirected" });

        for stratum in 0..strat.stratum_count {
            let rule_idxs = &strat.strata_rules[stratum];
            if rule_idxs.is_empty() {
                continue;
            }
            // structural attributes only: the stratum index, its rule
            // count, and (attached at close) the semi-naive iteration
            // count — all invariant across the thread knob
            let stratum_span = obs.span("datalog/stratum");
            stratum_span.attr("stratum", stratum);
            stratum_span.attr("rules", rule_idxs.len());
            let compiled: Vec<CompiledRule> = rule_idxs
                .iter()
                .map(|&ri| CompiledRule::compile(&program.rules[ri], ri))
                .collect::<Result<_>>()?;
            for cr in &compiled {
                // join-planner telemetry: which positive literals got an
                // indexable lookup shape vs a scan — a per-rule compile
                // decision, so the tallies are knob-invariant up to the
                // program being evaluated
                let indexed = cr.indexed_lookups().len();
                obs.add(obs_key::JOIN_INDEXED, indexed as u64);
                obs.add(
                    obs_key::JOIN_SCAN,
                    (cr.positive_lit_indices.len() - indexed) as u64,
                );
                for (pred, cols) in cr.indexed_lookups() {
                    store.register(pred, cols);
                }
            }
            let recursive = strat.recursive_preds(program, stratum);
            // body predicates per rule, for independence batching: a rule
            // that reads a predicate written earlier in the same pass must
            // observe those writes, so it cannot share a snapshot with the
            // writer. Negated predicates live in lower strata (stratified),
            // but are included for robustness.
            let rule_reads: Vec<BTreeSet<&str>> = compiled
                .iter()
                .map(|cr| {
                    cr.rule
                        .positive_preds()
                        .chain(cr.rule.negative_preds())
                        .collect()
                })
                .collect();
            let rule_heads: Vec<&str> =
                compiled.iter().map(|cr| cr.rule.head_pred.as_str()).collect();

            // initial pass: all rules, full database. Maximal runs of
            // consecutive independent rules evaluate in parallel against
            // the same snapshot; their derivations then insert in rule
            // order, reproducing the sequential pass byte for byte.
            let mut delta = Database::new();
            let all_rules: Vec<usize> = (0..compiled.len()).collect();
            let initial_par = self.pass_parallelism(db.total_facts());
            obs.incr(obs_key::STRATUM_PASSES);
            for batch in independent_batches(&all_rules, &rule_reads, &rule_heads) {
                store.refresh(&db, fault)?;
                let outs = par::par_try_map_obs(
                    obs,
                    initial_par,
                    "datalog/stratum-initial",
                    &batch,
                    |_, &ci| self.eval_rule_with(&compiled[ci], &db, None, Some(&*store)),
                )?;
                for derived in outs {
                    for (pred, t) in derived {
                        if demand.is_some_and(|d| !d.keeps(&pred, &t)) {
                            continue;
                        }
                        if db.insert(&pred, t.clone()) {
                            delta.insert(&pred, t);
                        }
                    }
                }
            }
            self.check_size(&db)?;

            // semi-naive iteration
            let mut iter = 0usize;
            while delta.total_facts() > 0 {
                iter += 1;
                if iter > self.config.max_iterations {
                    return Err(VadaError::Eval(format!(
                        "stratum {stratum} exceeded {} iterations",
                        self.config.max_iterations
                    )));
                }
                let mut new_delta = Database::new();
                // one pass per occurrence of a recursive predicate, in the
                // same flattened (rule, occurrence) order the sequential
                // loop visits; pass eligibility depends only on the
                // previous iteration's delta, so the work list is fixed
                // up front and batches by the same independence rule.
                let mut passes: Vec<(usize, usize)> = Vec::new();
                for (ci, cr) in compiled.iter().enumerate() {
                    if cr.rule.has_aggregate() {
                        continue;
                    }
                    for (occ, lit_idx) in cr.positive_lit_indices.iter().enumerate() {
                        let Literal::Pos(atom) = &cr.rule.body[*lit_idx] else {
                            continue;
                        };
                        if !recursive.contains(&atom.pred) {
                            continue;
                        }
                        if delta.facts(&atom.pred).is_empty() {
                            continue;
                        }
                        passes.push((ci, occ));
                    }
                }
                let pass_rules: Vec<usize> = passes.iter().map(|&(ci, _)| ci).collect();
                let delta_par = self.pass_parallelism(delta.total_facts());
                obs.incr(obs_key::DELTA_PASSES);
                for batch in independent_batches(&pass_rules, &rule_reads, &rule_heads) {
                    store.refresh(&db, fault)?;
                    let outs = par::par_try_map_obs(
                        obs,
                        delta_par,
                        "datalog/stratum-delta",
                        &batch,
                        |_, &pi| {
                            let (ci, occ) = passes[pi];
                            self.eval_rule_with(
                                &compiled[ci],
                                &db,
                                Some(DeltaSpec::Insert { delta: &delta, occ }),
                                Some(&*store),
                            )
                        },
                    )?;
                    for derived in outs {
                        for (pred, t) in derived {
                            if demand.is_some_and(|d| !d.keeps(&pred, &t)) {
                                continue;
                            }
                            if db.insert(&pred, t.clone()) {
                                new_delta.insert(&pred, t);
                            }
                        }
                    }
                }
                self.check_size(&db)?;
                delta = new_delta;
            }
            stratum_span.attr("delta_passes", iter);
        }
        Ok(db)
    }

    /// Evaluate a stand-alone query (from
    /// [`parse_query`](crate::parser::parse_query)) against a fixed
    /// database; returns the distinct head tuples.
    pub fn eval_query(&self, query: &Rule, db: &Database) -> Result<Vec<Tuple>> {
        let cr = CompiledRule::compile(query, usize::MAX)?;
        let derived = self.eval_rule(&cr, db, None)?;
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for (_, t) in derived {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
        Ok(out)
    }

    /// [`Engine::eval_query`] against a *persistent* [`IndexStore`]: the
    /// query's lookup shapes are registered, the store is refreshed
    /// (O(change) for appended rows, rebuild for shrunk/rewritten
    /// predicates), and the evaluation probes the shared indexes instead
    /// of building lazy per-call ones. Answers are byte-identical to
    /// [`Engine::eval_query`]; returns whether the refresh had to index
    /// anything, so callers can tell a warm hit from index work.
    pub(crate) fn eval_query_with_store(
        &self,
        query: &Rule,
        db: &Database,
        store: &mut IndexStore,
    ) -> Result<(Vec<Tuple>, bool)> {
        let cr = CompiledRule::compile(query, usize::MAX)?;
        store.obs = self.config.obs.clone();
        for (pred, cols) in cr.indexed_lookups() {
            store.register(pred, cols);
        }
        let refreshed = store.refresh(db, self.config.inject_fault)?;
        let derived = self.eval_rule_with(&cr, db, None, Some(&*store))?;
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        for (_, t) in derived {
            if seen.insert(t.clone()) {
                out.push(t);
            }
        }
        Ok((out, refreshed))
    }

    /// Engine configuration (read access for the incremental layer).
    pub(crate) fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Engine configuration (mutable access for the incremental layer;
    /// changing the parallelism level never changes output).
    pub(crate) fn config_mut(&mut self) -> &mut EngineConfig {
        &mut self.config
    }

    /// The level a stratum pass should run at: tiny inputs (a
    /// near-converged delta iteration, a trivial program) don't amortise
    /// worker spawn, so they drop to sequential. The level never affects
    /// output, only wall-clock, so this heuristic is safe by construction.
    pub(crate) fn pass_parallelism(&self, input_facts: usize) -> Parallelism {
        const MIN_FACTS_FOR_WORKERS: usize = 64;
        if input_facts < MIN_FACTS_FOR_WORKERS {
            Parallelism::Sequential
        } else {
            self.config.parallelism
        }
    }

    fn check_size(&self, db: &Database) -> Result<()> {
        if db.total_facts() > self.config.max_facts {
            return Err(VadaError::Eval(format!(
                "derived fact count exceeded the cap of {}",
                self.config.max_facts
            )));
        }
        Ok(())
    }

    /// Evaluate one rule; returns `(pred, tuple)` pairs (possibly with
    /// duplicates — the caller dedups on insert).
    pub(crate) fn eval_rule(
        &self,
        cr: &CompiledRule,
        db: &Database,
        spec: Option<DeltaSpec<'_>>,
    ) -> Result<Vec<(String, Tuple)>> {
        self.eval_rule_with(cr, db, spec, None)
    }

    /// [`Engine::eval_rule`] with an optional shared [`IndexStore`] over
    /// `db` for full-database lookups; delta/filtered sources keep their
    /// lazy per-call indexes either way.
    pub(crate) fn eval_rule_with(
        &self,
        cr: &CompiledRule,
        db: &Database,
        spec: Option<DeltaSpec<'_>>,
        shared: Option<&IndexStore>,
    ) -> Result<Vec<(String, Tuple)>> {
        let ctx = EvalCtx { db, spec, shared, cache: RefCell::new(HashMap::new()) };
        let mut binding: Binding = vec![None; cr.rule.var_count];
        let mut results = Vec::new();

        if cr.rule.has_aggregate() {
            let mut rows: Vec<Binding> = Vec::new();
            let mut seen: HashSet<Vec<Option<Value>>> = HashSet::new();
            join(cr, &ctx, 0, &mut binding, &mut |b| {
                if seen.insert(b.to_vec()) {
                    rows.push(b.to_vec());
                }
                Ok(())
            })?;
            aggregate(cr, &rows, &mut results)?;
        } else {
            let cfg_depth = self.config.max_skolem_depth;
            join(cr, &ctx, 0, &mut binding, &mut |b| {
                let t = head_tuple(cr, b, cfg_depth)?;
                results.push((cr.rule.head_pred.clone(), t));
                Ok(())
            })?;
        }
        Ok(results)
    }

    /// Whether `cr` (a non-aggregate rule) can derive exactly `fact` from
    /// `db` minus `dead` — DRed's re-derivation probe. Head variables that
    /// occur in the body are pre-bound from `fact`, so the join explores
    /// only bindings compatible with the candidate and exits on the first
    /// supporting derivation; O(probe), not O(rule enumeration).
    pub(crate) fn derives_fact(
        &self,
        cr: &CompiledRule,
        db: &Database,
        dead: &Database,
        fact: &Tuple,
    ) -> Result<bool> {
        if cr.rule.has_aggregate() {
            return Err(VadaError::Eval(
                "derivability probe on an aggregate rule (internal invariant)".into(),
            ));
        }
        if fact.arity() != cr.rule.head_terms.len() {
            return Ok(false);
        }
        let mut body_vars = BTreeSet::new();
        for lit in &cr.rule.body {
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => a.vars(&mut body_vars),
                Literal::Cmp(_, l, r) => {
                    l.vars(&mut body_vars);
                    r.vars(&mut body_vars);
                }
            }
        }
        let mut binding: Binding = vec![None; cr.rule.var_count];
        for (i, ht) in cr.rule.head_terms.iter().enumerate() {
            match ht {
                HeadTerm::Term(Term::Const(c)) => {
                    if c != &fact[i] {
                        return Ok(false);
                    }
                }
                HeadTerm::Term(Term::Var(id, _)) if body_vars.contains(id) => {
                    match &binding[*id] {
                        Some(v) if v != &fact[i] => return Ok(false),
                        Some(_) => {}
                        None => binding[*id] = Some(fact[i].clone()),
                    }
                }
                // existential head variable: left unbound, checked via the
                // regenerated (deterministic) skolem below
                HeadTerm::Term(Term::Var(..)) => {}
                HeadTerm::Agg(..) => unreachable!("aggregate rules rejected above"),
            }
        }
        let ctx = EvalCtx {
            db,
            spec: Some(DeltaSpec::Except { dead }),
            shared: None,
            cache: RefCell::new(HashMap::new()),
        };
        let mut found = false;
        let depth = self.config.max_skolem_depth;
        let outcome = join(cr, &ctx, 0, &mut binding, &mut |b| {
            if head_tuple(cr, b, depth)? == *fact {
                found = true;
                return Err(VadaError::Eval(STOP_SENTINEL.into()));
            }
            Ok(())
        });
        match outcome {
            Ok(()) => Ok(found),
            Err(VadaError::Eval(m)) if m == STOP_SENTINEL => Ok(true),
            Err(e) => Err(e),
        }
    }
}

/// Early-exit marker threaded through the join's `Result` channel by
/// [`Engine::derives_fact`]; never surfaces to callers.
const STOP_SENTINEL: &str = "__vada_derivability_probe_stop__";

/// Split a sequence of work items (each evaluating one rule) into maximal
/// runs that may share a database snapshot: an item joins the current run
/// iff its rule's body predicates don't intersect the head predicates the
/// run already writes — evaluating such a run in parallel and inserting
/// its derivations in item order is indistinguishable from the sequential
/// eval-insert-eval interleaving. Returns runs of work-item indices.
pub(crate) fn independent_batches(
    item_rules: &[usize],
    reads: &[BTreeSet<&str>],
    heads: &[&str],
) -> Vec<Vec<usize>> {
    let mut batches: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut cur_heads: BTreeSet<&str> = BTreeSet::new();
    for (item, &ri) in item_rules.iter().enumerate() {
        if reads[ri].iter().any(|p| cur_heads.contains(p)) {
            batches.push(std::mem::take(&mut cur));
            cur_heads.clear();
        }
        cur.push(item);
        cur_heads.insert(heads[ri]);
    }
    if !cur.is_empty() {
        batches.push(cur);
    }
    batches
}

/// Build the head tuple for a satisfied binding, inventing skolems for
/// existential variables.
fn head_tuple(cr: &CompiledRule, binding: &Binding, max_depth: usize) -> Result<Tuple> {
    // frontier: resolved non-existential head var/const values, in order
    let mut frontier: Vec<Value> = Vec::new();
    for ht in &cr.rule.head_terms {
        if let HeadTerm::Term(t) = ht {
            if let Some(v) = resolve(t, binding) {
                frontier.push(v);
            }
        }
    }
    let mut skolems: HashMap<usize, Value> = HashMap::new();
    let mut values = Vec::with_capacity(cr.rule.head_terms.len());
    for ht in &cr.rule.head_terms {
        match ht {
            HeadTerm::Term(t) => match resolve(t, binding) {
                Some(v) => values.push(v),
                None => {
                    let Term::Var(id, name) = t else {
                        return Err(VadaError::Eval("unresolved constant".into()));
                    };
                    let v = match skolems.get(id) {
                        Some(v) => v.clone(),
                        None => {
                            let v = skolem::make_skolem(cr.rule_idx, name, &frontier, max_depth)?;
                            skolems.insert(*id, v.clone());
                            v
                        }
                    };
                    values.push(v);
                }
            },
            HeadTerm::Agg(..) => {
                return Err(VadaError::Eval("aggregate outside aggregate path".into()))
            }
        }
    }
    Ok(Tuple::new(values))
}

/// Compute aggregate head tuples from deduplicated body bindings.
fn aggregate(
    cr: &CompiledRule,
    rows: &[Binding],
    out: &mut Vec<(String, Tuple)>,
) -> Result<()> {
    use crate::ast::AggFunc;
    // group key: resolved plain head terms
    let mut groups: HashMap<Vec<Value>, Vec<&Binding>> = HashMap::new();
    for b in rows {
        let mut key = Vec::new();
        for ht in &cr.rule.head_terms {
            if let HeadTerm::Term(t) = ht {
                key.push(resolve(t, b).ok_or_else(|| {
                    VadaError::Eval(format!(
                        "group-by variable unbound in rule `{}`",
                        cr.rule
                    ))
                })?);
            }
        }
        groups.entry(key).or_default().push(b);
    }
    let mut keys: Vec<&Vec<Value>> = groups.keys().collect();
    keys.sort();
    for key in keys {
        let members = &groups[key];
        let mut values = Vec::with_capacity(cr.rule.head_terms.len());
        let mut plain_iter = key.iter();
        for ht in &cr.rule.head_terms {
            match ht {
                HeadTerm::Term(_) => values.push(plain_iter.next().unwrap().clone()),
                HeadTerm::Agg(func, var, name) => {
                    let inputs: Vec<&Value> = members
                        .iter()
                        .filter_map(|b| b[*var].as_ref())
                        .filter(|v| !v.is_null())
                        .collect();
                    let v = match func {
                        AggFunc::Count => Value::Int(inputs.len() as i64),
                        AggFunc::Min => inputs.iter().min().map(|v| (*v).clone()).unwrap_or(Value::Null),
                        AggFunc::Max => inputs.iter().max().map(|v| (*v).clone()).unwrap_or(Value::Null),
                        AggFunc::Sum | AggFunc::Avg => {
                            let mut sum = 0.0f64;
                            let mut all_int = true;
                            let mut n = 0usize;
                            for v in &inputs {
                                match v.numeric() {
                                    Some(x) => {
                                        sum += x;
                                        n += 1;
                                        all_int &= matches!(v, Value::Int(_));
                                    }
                                    None => {
                                        return Err(VadaError::Eval(format!(
                                            "non-numeric value in {func}({name})"
                                        )))
                                    }
                                }
                            }
                            if n == 0 {
                                Value::Null
                            } else if *func == AggFunc::Avg {
                                Value::Float(sum / n as f64)
                            } else if all_int {
                                Value::Int(sum as i64)
                            } else {
                                Value::Float(sum)
                            }
                        }
                    };
                    values.push(v);
                }
            }
        }
        out.push((cr.rule.head_pred.clone(), Tuple::new(values)));
    }
    Ok(())
}

/// A rule with a precomputed evaluation order and per-literal bound-position
/// information.
pub(crate) struct CompiledRule<'a> {
    pub(crate) rule: &'a Rule,
    rule_idx: usize,
    /// Evaluation order: indices into `rule.body`.
    pub(crate) order: Vec<usize>,
    /// Bound positions of each positive literal *in evaluation order
    /// position* (index aligned with `order`).
    bound_positions: Vec<Vec<usize>>,
    /// Indices (into `rule.body`) of positive literals in source order —
    /// used for delta-occurrence numbering.
    pub(crate) positive_lit_indices: Vec<usize>,
}

impl<'a> CompiledRule<'a> {
    pub(crate) fn compile(rule: &'a Rule, rule_idx: usize) -> Result<CompiledRule<'a>> {
        let body = &rule.body;
        let mut placed = vec![false; body.len()];
        let mut bound: BTreeSet<usize> = BTreeSet::new();
        let mut order: Vec<usize> = Vec::with_capacity(body.len());
        let mut bound_positions: Vec<Vec<usize>> = Vec::with_capacity(body.len());

        let lit_vars = |lit: &Literal| -> BTreeSet<usize> {
            let mut s = BTreeSet::new();
            match lit {
                Literal::Pos(a) | Literal::Neg(a) => a.vars(&mut s),
                Literal::Cmp(_, l, r) => {
                    l.vars(&mut s);
                    r.vars(&mut s);
                }
            }
            s
        };

        while order.len() < body.len() {
            let mut chosen: Option<usize> = None;
            // 1. an `=` usable as a test or assignment
            for (i, lit) in body.iter().enumerate() {
                if placed[i] {
                    continue;
                }
                if let Literal::Cmp(CmpOp::Eq, l, r) = lit {
                    let mut lv = BTreeSet::new();
                    let mut rv = BTreeSet::new();
                    l.vars(&mut lv);
                    r.vars(&mut rv);
                    let l_ok = lv.iter().all(|v| bound.contains(v));
                    let r_ok = rv.iter().all(|v| bound.contains(v));
                    let assignable = (l_ok && r.as_var().is_some())
                        || (r_ok && l.as_var().is_some())
                        || (l_ok && r_ok);
                    if assignable {
                        chosen = Some(i);
                        break;
                    }
                }
            }
            // 2. any other comparison with all vars bound
            if chosen.is_none() {
                for (i, lit) in body.iter().enumerate() {
                    if placed[i] {
                        continue;
                    }
                    if let Literal::Cmp(op, ..) = lit {
                        if *op != CmpOp::Eq && lit_vars(lit).iter().all(|v| bound.contains(v)) {
                            chosen = Some(i);
                            break;
                        }
                    }
                }
            }
            // 3. a negation with all vars bound
            if chosen.is_none() {
                for (i, lit) in body.iter().enumerate() {
                    if placed[i] {
                        continue;
                    }
                    if matches!(lit, Literal::Neg(_))
                        && lit_vars(lit).iter().all(|v| bound.contains(v))
                    {
                        chosen = Some(i);
                        break;
                    }
                }
            }
            // 4. the next positive literal in source order
            if chosen.is_none() {
                for (i, lit) in body.iter().enumerate() {
                    if !placed[i] && matches!(lit, Literal::Pos(_)) {
                        chosen = Some(i);
                        break;
                    }
                }
            }
            let Some(i) = chosen else {
                return Err(VadaError::Program(format!(
                    "cannot find a safe evaluation order for rule `{rule}`"
                )));
            };
            placed[i] = true;
            // bound positions for positive literals: argument positions whose
            // term is a constant or an already-bound variable
            if let Literal::Pos(atom) = &body[i] {
                let positions: Vec<usize> = atom
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| match t {
                        Term::Const(_) => true,
                        Term::Var(v, _) => bound.contains(v),
                    })
                    .map(|(p, _)| p)
                    .collect();
                bound_positions.push(positions);
            } else {
                bound_positions.push(Vec::new());
            }
            for v in lit_vars(&body[i]) {
                bound.insert(v);
            }
            order.push(i);
        }

        let positive_lit_indices: Vec<usize> = body
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, Literal::Pos(_)))
            .map(|(i, _)| i)
            .collect();

        Ok(CompiledRule { rule, rule_idx, order, bound_positions, positive_lit_indices })
    }

    /// Occurrence number (among positive literals) of body literal `lit_idx`.
    pub(crate) fn occurrence_of(&self, lit_idx: usize) -> Option<usize> {
        self.positive_lit_indices.iter().position(|&i| i == lit_idx)
    }

    /// The `(pred, bound columns)` lookup shapes this rule performs against
    /// the full database — the shapes worth a shared persistent index.
    pub(crate) fn indexed_lookups(&self) -> Vec<(&str, &[usize])> {
        self.order
            .iter()
            .zip(self.bound_positions.iter())
            .filter_map(|(&li, cols)| match &self.rule.body[li] {
                Literal::Pos(a) if !cols.is_empty() => Some((a.pred.as_str(), cols.as_slice())),
                _ => None,
            })
            .collect()
    }
}

/// Persistent hash indexes over the growing fixpoint database, shared by
/// every rule evaluation of a run: `(pred, cols) → projection → row ids`.
/// Registered up front from the compiled lookup shapes of each stratum and
/// refreshed *incrementally* before every parallel batch (facts only ever
/// append during a run), it replaces the per-pass lazily rebuilt indexes
/// for full-database sources. Row-id lists are identical to what the lazy
/// build would produce, so it affects wall-clock only.
#[derive(Default)]
pub(crate) struct IndexStore {
    indexes: HashMap<String, HashMap<Vec<usize>, SharedIndex>>,
    /// Evaluation telemetry (`datalog.index.*`); the run's registry,
    /// cloned in by `run_impl`.
    pub(crate) obs: Obs,
}

#[derive(Default)]
struct SharedIndex {
    /// How many rows of the predicate are already indexed.
    covered: usize,
    /// The predicate's [`Database::epoch`] the covered rows were read
    /// under. `covered` alone cannot be trusted: a predicate that shrinks
    /// and regrows to the same length keeps its old length while its row
    /// ids point at different facts, so the index is version-keyed on the
    /// reorder epoch and rebuilt whenever it no longer matches.
    epoch: u64,
    map: HashMap<Tuple, Vec<usize>>,
}

impl IndexStore {
    /// Whether no shape has been registered.
    pub(crate) fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Ensure an index exists for this lookup shape (idempotent).
    pub(crate) fn register(&mut self, pred: &str, cols: &[usize]) {
        self.indexes
            .entry(pred.to_string())
            .or_default()
            .entry(cols.to_vec())
            .or_default();
    }

    /// Bring every registered index up to date with `db`: an index whose
    /// predicate only grew is extended over the appended rows in
    /// O(change); one whose predicate shrank or changed reorder epoch is
    /// rebuilt from row 0 (its row ids may point at different facts —
    /// including the shrink-and-regrow-to-the-same-length case a bare
    /// length watermark cannot see). `datalog.index.builds` counts only
    /// refreshes that indexed at least one row, so the counter tracks
    /// actual work, not call sites. `fault` is the engine's injection
    /// knob: `"index-build"` panics here (on every call, whether or not
    /// work was pending, so fault identity is schedule-independent),
    /// surfacing as a [`VadaError::Parallel`] naming the
    /// `datalog/index_build` stage. Rows too short to project
    /// (mixed-arity predicates) are skipped — the join's arity check
    /// would reject them anyway.
    pub(crate) fn refresh(&mut self, db: &Database, fault: Option<&'static str>) -> Result<bool> {
        let mut built = false;
        magic::guard_stage("datalog/index_build", || {
            if fault == Some("index-build") {
                panic!("injected index-build fault");
            }
            for (pred, shapes) in self.indexes.iter_mut() {
                let facts = db.facts(pred);
                let epoch = db.epoch(pred);
                for (cols, index) in shapes.iter_mut() {
                    if index.epoch != epoch || facts.len() < index.covered {
                        index.map.clear();
                        index.covered = 0;
                        index.epoch = epoch;
                    }
                    if index.covered == facts.len() {
                        continue;
                    }
                    built = true;
                    for (row, t) in facts.iter().enumerate().skip(index.covered) {
                        if cols.iter().all(|&c| c < t.arity()) {
                            index.map.entry(t.project(cols)).or_default().push(row);
                        }
                    }
                    index.covered = facts.len();
                }
            }
            Ok(())
        })?;
        if built {
            self.obs.incr(obs_key::INDEX_BUILDS);
        }
        Ok(built)
    }

    /// Row ids matching `key`, if this shape is registered and covers the
    /// predicate's current length *and* reorder epoch (`None` falls back
    /// to the lazy index).
    fn lookup(&self, db: &Database, pred: &str, cols: &[usize], key: &Tuple) -> Option<Vec<usize>> {
        let index = self.indexes.get(pred)?.get(cols)?;
        if index.covered != db.facts(pred).len() || index.epoch != db.epoch(pred) {
            return None;
        }
        // probe tallies are commutative adds: the total depends only on
        // which (literal, binding) probes the evaluation performs — fixed
        // by the program and database — never on worker scheduling
        self.obs.incr(obs_key::INDEX_PROBES);
        Some(index.map.get(key).cloned().unwrap_or_default())
    }
}

/// How one rule evaluation sources its positive literals — the engine's
/// single mechanism behind full passes, semi-naive insertion deltas, and
/// the retraction machinery.
#[derive(Clone, Copy)]
pub(crate) enum DeltaSpec<'a> {
    /// Occurrence `occ` (among positive literals) enumerates `delta`;
    /// everything else reads the full database. The classic semi-naive
    /// insertion pass.
    Insert {
        /// The new facts.
        delta: &'a Database,
        /// Positive-literal occurrence forced to the delta.
        occ: usize,
    },
    /// Occurrence `occ` enumerates `removed`; occurrences *before* it read
    /// the database minus `removed`; occurrences *after* it read the full
    /// database (which still holds the removed facts — retraction commits
    /// after enumeration). Summed over every occurrence of a shrunk
    /// predicate, this enumerates each destroyed derivation exactly once:
    /// at the first occurrence where it touches a removed fact.
    Delete {
        /// The facts being retracted.
        removed: &'a Database,
        /// Positive-literal occurrence forced to the removed set.
        occ: usize,
    },
    /// Every positive literal reads the database minus `dead` — the
    /// surviving view DRed's re-derivation phase probes against.
    Except {
        /// Facts excluded from view.
        dead: &'a Database,
    },
}

/// Index namespace per source shape (full / delta / filtered view).
type IndexKey = (u8, String, Vec<usize>);

/// One positive literal's resolved source: the backing database, its index
/// namespace, and an optional set of facts to treat as absent.
struct SourceSel<'a> {
    db: &'a Database,
    tag: u8,
    minus: Option<&'a Database>,
}

struct EvalCtx<'a> {
    db: &'a Database,
    spec: Option<DeltaSpec<'a>>,
    /// persistent indexes over `db` (full-source lookups only)
    shared: Option<&'a IndexStore>,
    /// lazily built hash indexes: (tag, pred, cols) → key → row ids
    cache: RefCell<HashMap<IndexKey, HashMap<Tuple, Vec<usize>>>>,
}

impl<'a> EvalCtx<'a> {
    fn source_for(&self, cr: &CompiledRule, lit_idx: usize) -> SourceSel<'a> {
        let full = SourceSel { db: self.db, tag: 0, minus: None };
        match self.spec {
            None => full,
            Some(DeltaSpec::Insert { delta, occ }) => {
                if cr.occurrence_of(lit_idx) == Some(occ) {
                    SourceSel { db: delta, tag: 1, minus: None }
                } else {
                    full
                }
            }
            Some(DeltaSpec::Delete { removed, occ }) => {
                match cr.occurrence_of(lit_idx) {
                    Some(o) if o == occ => SourceSel { db: removed, tag: 1, minus: None },
                    Some(o) if o < occ => {
                        SourceSel { db: self.db, tag: 2, minus: Some(removed) }
                    }
                    _ => full,
                }
            }
            Some(DeltaSpec::Except { dead }) => {
                SourceSel { db: self.db, tag: 2, minus: Some(dead) }
            }
        }
    }

    /// Row ids of `pred` facts (within the selected source, respecting its
    /// exclusion set) whose projection on `cols` equals `key`.
    fn candidates(&self, sel: &SourceSel<'a>, pred: &str, cols: &[usize], key: &Tuple) -> Vec<usize> {
        let visible = |t: &Tuple| sel.minus.is_none_or(|m| !m.contains(pred, t));
        if cols.is_empty() {
            return sel
                .db
                .facts(pred)
                .iter()
                .enumerate()
                .filter(|(_, t)| visible(t))
                .map(|(row, _)| row)
                .collect();
        }
        // the full-database source first consults the run's shared indexes
        if sel.tag == 0 && sel.minus.is_none() {
            if let Some(rows) = self
                .shared
                .and_then(|s| s.lookup(sel.db, pred, cols, key))
            {
                return rows;
            }
        }
        let cache_key = (sel.tag, pred.to_string(), cols.to_vec());
        let mut cache = self.cache.borrow_mut();
        let index = cache.entry(cache_key).or_insert_with(|| {
            let mut idx: HashMap<Tuple, Vec<usize>> = HashMap::new();
            for (row, t) in sel.db.facts(pred).iter().enumerate() {
                if visible(t) && cols.iter().all(|&c| c < t.arity()) {
                    idx.entry(t.project(cols)).or_default().push(row);
                }
            }
            idx
        });
        index.get(key).cloned().unwrap_or_default()
    }
}

/// Recursive join over the compiled literal order. Calls `emit` for every
/// satisfying binding.
fn join(
    cr: &CompiledRule,
    ctx: &EvalCtx,
    depth: usize,
    binding: &mut Binding,
    emit: &mut dyn FnMut(&Binding) -> Result<()>,
) -> Result<()> {
    if depth == cr.order.len() {
        return emit(binding);
    }
    let lit_idx = cr.order[depth];
    match &cr.rule.body[lit_idx] {
        Literal::Pos(atom) => {
            let sel = ctx.source_for(cr, lit_idx);
            let cols = &cr.bound_positions[depth];
            let key: Tuple = cols
                .iter()
                .map(|&p| resolve(&atom.terms[p], binding).expect("bound position must resolve"))
                .collect();
            let rows = ctx.candidates(&sel, &atom.pred, cols, &key);
            let facts = sel.db.facts(&atom.pred);
            for row in rows {
                let fact = &facts[row];
                if fact.arity() != atom.terms.len() {
                    continue;
                }
                let mut trail: Vec<usize> = Vec::new();
                let mut ok = true;
                for (t, v) in atom.terms.iter().zip(fact.iter()) {
                    match t {
                        Term::Const(c) => {
                            if c != v {
                                ok = false;
                                break;
                            }
                        }
                        Term::Var(id, _) => match &binding[*id] {
                            Some(b) => {
                                if b != v {
                                    ok = false;
                                    break;
                                }
                            }
                            None => {
                                binding[*id] = Some(v.clone());
                                trail.push(*id);
                            }
                        },
                    }
                }
                if ok {
                    join(cr, ctx, depth + 1, binding, emit)?;
                }
                for id in trail {
                    binding[id] = None;
                }
            }
            Ok(())
        }
        Literal::Neg(atom) => {
            let t: Option<Tuple> = atom
                .terms
                .iter()
                .map(|t| resolve(t, binding))
                .collect();
            let Some(t) = t else {
                return Err(VadaError::Eval(format!(
                    "unbound variable in negated atom `{atom}` of rule `{}`",
                    cr.rule
                )));
            };
            if !ctx.db.contains(&atom.pred, &t) {
                join(cr, ctx, depth + 1, binding, emit)?;
            }
            Ok(())
        }
        Literal::Cmp(op, l, r) => {
            let l_bound = expr_bound(l, binding);
            let r_bound = expr_bound(r, binding);
            match (l_bound, r_bound) {
                (true, true) => {
                    let lv = eval_expr(l, binding)?;
                    let rv = eval_expr(r, binding)?;
                    if apply_cmp(*op, &lv, &rv) {
                        join(cr, ctx, depth + 1, binding, emit)?;
                    }
                    Ok(())
                }
                (true, false) if *op == CmpOp::Eq => {
                    let Some(var) = r.as_var() else {
                        return Err(VadaError::Eval(format!(
                            "cannot invert expression `{r}` in rule `{}`",
                            cr.rule
                        )));
                    };
                    let lv = eval_expr(l, binding)?;
                    binding[var] = Some(lv);
                    join(cr, ctx, depth + 1, binding, emit)?;
                    binding[var] = None;
                    Ok(())
                }
                (false, true) if *op == CmpOp::Eq => {
                    let Some(var) = l.as_var() else {
                        return Err(VadaError::Eval(format!(
                            "cannot invert expression `{l}` in rule `{}`",
                            cr.rule
                        )));
                    };
                    let rv = eval_expr(r, binding)?;
                    binding[var] = Some(rv);
                    join(cr, ctx, depth + 1, binding, emit)?;
                    binding[var] = None;
                    Ok(())
                }
                _ => Err(VadaError::Eval(format!(
                    "comparison `{l} {op} {r}` has unbound variables in rule `{}`",
                    cr.rule
                ))),
            }
        }
    }
}

fn expr_bound(e: &crate::ast::Expr, binding: &Binding) -> bool {
    let mut vs = BTreeSet::new();
    e.vars(&mut vs);
    vs.iter().all(|v| binding[*v].is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_program, parse_query};
    use vada_common::tuple;

    fn run(src: &str) -> Database {
        Engine::default()
            .run(&parse_program(src).unwrap(), Database::new())
            .unwrap()
    }

    #[test]
    fn facts_loaded() {
        let db = run(r#"p(1). p(2). p(1)."#);
        assert_eq!(db.facts("p").len(), 2);
    }

    #[test]
    fn sharded_extensional_load_is_identical_to_monolithic() {
        let mut rel =
            vada_common::Relation::empty(vada_common::Schema::all_str("src", &["a", "b"]));
        for i in 0..300 {
            // duplicates included: the fact set must dedup identically
            rel.push(tuple![format!("{}", i % 250), format!("v{i}")]).unwrap();
            if i % 50 == 0 {
                rel.push(tuple![format!("{}", i % 250), format!("v{i}")]).unwrap();
            }
        }
        let mut mono = Database::new();
        mono.insert_relation(&rel);
        for shards in [2usize, 4, 7] {
            for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
                let mut db = Database::new();
                db.insert_relation_sharded(&rel, Sharding::Shards(shards), par).unwrap();
                assert_eq!(db.facts("src"), mono.facts("src"), "shards={shards} {par:?}");
            }
        }
        let mut off = Database::new();
        off.insert_relation_sharded(&rel, Sharding::Off, Parallelism::Sequential).unwrap();
        assert_eq!(off.facts("src"), mono.facts("src"));
    }

    #[test]
    fn transitive_closure_chain() {
        let mut src = String::new();
        for i in 0..50 {
            src.push_str(&format!("edge({}, {}).\n", i, i + 1));
        }
        src.push_str("tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).");
        let db = run(&src);
        assert_eq!(db.facts("tc").len(), 50 * 51 / 2);
    }

    #[test]
    fn negation_after_recursion() {
        let db = run(r#"
            node(1). node(2). node(3).
            edge(1, 2).
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            disconnected(X, Y) :- node(X), node(Y), X != Y, not reach(X, Y).
        "#);
        // pairs (x,y), x != y, not reachable: all except (1,2)
        assert_eq!(db.facts("disconnected").len(), 5);
    }

    #[test]
    fn arithmetic_assignment() {
        let db = run("price(10). doubled(Y) :- price(X), Y = X * 2.");
        assert_eq!(db.facts("doubled"), &[tuple![20]]);
    }

    #[test]
    fn comparison_filters() {
        let db = run("n(1). n(5). n(10). big(X) :- n(X), X >= 5.");
        assert_eq!(db.facts("big").len(), 2);
    }

    #[test]
    fn assignment_before_generator_is_reordered() {
        let db = run("q(3). p(Y) :- Y = X + 1, q(X).");
        assert_eq!(db.facts("p"), &[tuple![4]]);
    }

    #[test]
    fn aggregates_group_correctly() {
        let db = run(r#"
            listing("aa1", 100). listing("aa1", 300). listing("bb2", 50).
            stats(PC, count(P), sum(P), min(P), max(P), avg(P)) :- listing(PC, P).
        "#);
        let facts = db.facts("stats");
        assert_eq!(facts.len(), 2);
        let aa1 = facts.iter().find(|t| t[0] == Value::str("aa1")).unwrap();
        assert_eq!(aa1.values()[1..].to_vec(), vec![
            Value::Int(2),
            Value::Int(400),
            Value::Int(100),
            Value::Int(300),
            Value::Float(200.0),
        ]);
    }

    #[test]
    fn aggregate_feeding_rule_in_same_stratum() {
        let db = run(r#"
            item("a", 60). item("a", 50). item("b", 10).
            total(G, sum(P)) :- item(G, P).
            big(G) :- total(G, T), T > 100.
        "#);
        assert_eq!(db.facts("big"), &[tuple!["a"]]);
    }

    #[test]
    fn existential_head_invents_one_value_per_frontier() {
        let db = run(r#"
            prop("p1"). prop("p2").
            owner(X, Z) :- prop(X).
        "#);
        let facts = db.facts("owner");
        assert_eq!(facts.len(), 2);
        assert!(crate::skolem::is_skolem(&facts[0][1]));
        assert_ne!(facts[0][1], facts[1][1]);
        // deterministic: re-running produces identical skolems
        let db2 = run(r#"
            prop("p1"). prop("p2").
            owner(X, Z) :- prop(X).
        "#);
        assert_eq!(db.facts("owner"), db2.facts("owner"));
    }

    #[test]
    fn divergent_chase_guarded() {
        // person(Z) feeds back into its own existential rule: not warded
        let err = Engine::new(EngineConfig { max_skolem_depth: 4, ..Default::default() })
            .run(
                &parse_program(
                    "person(\"ann\"). parent_of(X, Z) :- person(X). person(Z) :- parent_of(X, Z).",
                )
                .unwrap(),
                Database::new(),
            )
            .unwrap_err();
        assert!(err.to_string().contains("termination guard"), "{err}");
    }

    #[test]
    fn query_evaluation() {
        let db = run("m(\"a\", \"b\", 1). m(\"a\", \"c\", 2).");
        let q = parse_query("m(S, T, N), N >= 2").unwrap();
        let rows = Engine::default().eval_query(&q, &db).unwrap();
        assert_eq!(rows, vec![tuple!["a", "c", 2]]);
    }

    #[test]
    fn query_with_negation() {
        let db = run("a(1). a(2). b(2).");
        let q = parse_query("a(X), not b(X)").unwrap();
        let rows = Engine::default().eval_query(&q, &db).unwrap();
        assert_eq!(rows, vec![tuple![1]]);
    }

    #[test]
    fn zero_ary_predicates() {
        let db = run("go. done :- go.");
        assert_eq!(db.facts("done").len(), 1);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let db = run("e(1, 1). e(1, 2). self(X) :- e(X, X).");
        assert_eq!(db.facts("self"), &[tuple![1]]);
    }

    #[test]
    fn union_rules() {
        let db = run(r#"
            r1("a"). r2("b"). r2("a").
            all(X) :- r1(X).
            all(X) :- r2(X).
        "#);
        assert_eq!(db.facts("all").len(), 2);
    }

    #[test]
    fn string_concat_in_rules() {
        let db = run(r#"name("ann"). greeting(G) :- name(N), G = "hi " + N."#);
        assert_eq!(db.facts("greeting"), &[tuple!["hi ann"]]);
    }

    #[test]
    fn factset_removal_preserves_order() {
        let mut fs = FactSet::default();
        for i in 0..5i64 {
            fs.insert(tuple![i]);
        }
        assert!(fs.remove(&tuple![2]));
        assert!(!fs.remove(&tuple![2]));
        assert_eq!(fs.tuples(), &[tuple![0], tuple![1], tuple![3], tuple![4]]);
        let gone: HashSet<Tuple> = [tuple![0], tuple![4], tuple![9]].into_iter().collect();
        assert_eq!(fs.remove_all(&gone), 2);
        assert_eq!(fs.tuples(), &[tuple![1], tuple![3]]);
        assert!(!fs.contains(&tuple![0]));
    }

    #[test]
    fn shrunk_then_regrown_predicate_is_reindexed() {
        // regression: `covered` used to be treated as an append-only
        // watermark, so a predicate that shrank and regrew to the same
        // length kept serving the old row ids — and the join's term
        // re-check silently *dropped* the rows that moved
        let mut db = Database::new();
        for (a, b) in [(1, 10), (2, 20), (3, 30)] {
            db.insert("e", tuple![a, b]);
        }
        let mut store = IndexStore::default();
        store.register("e", &[0]);
        store.refresh(&db, None).unwrap();
        assert_eq!(store.lookup(&db, "e", &[0], &tuple![3]), Some(vec![2]));

        // shrink by one row, regrow to the same length with a new row:
        // facts are now [(1,10), (3,30), (4,40)] — same length as covered
        db.remove("e", &tuple![2, 20]);
        db.insert("e", tuple![4, 40]);
        store.refresh(&db, None).unwrap();
        assert_eq!(store.lookup(&db, "e", &[0], &tuple![3]), Some(vec![1]));
        assert_eq!(store.lookup(&db, "e", &[0], &tuple![4]), Some(vec![2]));
        assert_eq!(store.lookup(&db, "e", &[0], &tuple![2]), Some(vec![]));

        // the observable symptom: an indexed join must match a scan-join
        let program = parse_program("q(Y) :- e(4, Y).").unwrap();
        let cr = CompiledRule::compile(&program.rules[0], 0).unwrap();
        let engine = Engine::default();
        let scan = engine.eval_rule(&cr, &db, None).unwrap();
        let indexed = engine.eval_rule_with(&cr, &db, None, Some(&store)).unwrap();
        assert_eq!(scan, vec![("q".to_string(), tuple![40])]);
        assert_eq!(indexed, scan);

        // clear-and-reinsert to the same length (the dependency-view
        // patch pattern) must rebuild too, via the reorder epoch
        db.clear_predicate("e");
        for (a, b) in [(7, 70), (8, 80), (9, 90)] {
            db.insert("e", tuple![a, b]);
        }
        store.refresh(&db, None).unwrap();
        assert_eq!(store.lookup(&db, "e", &[0], &tuple![8]), Some(vec![1]));
        assert_eq!(store.lookup(&db, "e", &[0], &tuple![3]), Some(vec![]));
    }

    #[test]
    fn stale_index_is_never_served_between_refreshes() {
        // between refreshes, a mutated predicate must make `lookup` bail
        // to the lazy path (`None`) rather than answer from stale state —
        // including the regrow-to-the-same-length case, which the length
        // check alone cannot see
        let mut db = Database::new();
        db.insert("p", tuple![1]);
        db.insert("p", tuple![2]);
        let mut store = IndexStore::default();
        store.register("p", &[0]);
        store.refresh(&db, None).unwrap();
        db.remove("p", &tuple![1]);
        assert_eq!(store.lookup(&db, "p", &[0], &tuple![2]), None);
        db.insert("p", tuple![3]);
        assert_eq!(store.lookup(&db, "p", &[0], &tuple![2]), None);
        store.refresh(&db, None).unwrap();
        assert_eq!(store.lookup(&db, "p", &[0], &tuple![2]), Some(vec![0]));
    }

    #[test]
    fn index_builds_counter_tracks_work_not_calls() {
        let obs = vada_common::Obs::enabled();
        let mut db = Database::new();
        let mut store = IndexStore::default();
        store.obs = obs.clone();

        // nothing registered: refreshing is free and uncounted
        store.refresh(&db, None).unwrap();
        assert_eq!(obs.get(obs_key::INDEX_BUILDS), 0);

        store.register("p", &[0]);
        store.refresh(&db, None).unwrap();
        assert_eq!(obs.get(obs_key::INDEX_BUILDS), 0, "empty predicate: no rows indexed");

        db.insert("p", tuple![1]);
        assert!(store.refresh(&db, None).unwrap());
        assert_eq!(obs.get(obs_key::INDEX_BUILDS), 1);

        // warm: nothing changed, nothing counted
        assert!(!store.refresh(&db, None).unwrap());
        store.refresh(&db, None).unwrap();
        assert_eq!(obs.get(obs_key::INDEX_BUILDS), 1);

        // appended rows extend (and count once per refresh that works)
        db.insert("p", tuple![2]);
        db.insert("p", tuple![3]);
        assert!(store.refresh(&db, None).unwrap());
        assert_eq!(obs.get(obs_key::INDEX_BUILDS), 2);

        // a shrink rebuilds — that is work too
        db.remove("p", &tuple![2]);
        assert!(store.refresh(&db, None).unwrap());
        assert_eq!(obs.get(obs_key::INDEX_BUILDS), 3);
    }

    #[test]
    fn injected_index_build_fault_fires_even_on_warm_refreshes() {
        // the fault knob must keep its call-site identity: it fires on
        // every refresh call, not only on refreshes that have work to do
        let db = Database::new();
        let mut store = IndexStore::default();
        let err = store.refresh(&db, Some("index-build")).unwrap_err();
        assert!(err.to_string().contains("datalog/index_build"), "{err}");
    }

    #[test]
    fn deletion_spec_enumerates_each_destroyed_derivation_once() {
        // q(X) :- p(X), p(X) self-join: a derivation touching the removed
        // fact at both occurrences must be enumerated exactly once
        let program = parse_program("q(X) :- p(X), p(X).").unwrap();
        let mut db = Database::new();
        db.insert("p", tuple![1]);
        db.insert("p", tuple![2]);
        let mut removed = Database::new();
        removed.insert("p", tuple![2]);
        let cr = CompiledRule::compile(&program.rules[0], 0).unwrap();
        let engine = Engine::default();
        let mut destroyed = Vec::new();
        for occ in 0..2 {
            destroyed.extend(
                engine
                    .eval_rule(&cr, &db, Some(DeltaSpec::Delete { removed: &removed, occ }))
                    .unwrap(),
            );
        }
        assert_eq!(destroyed, vec![("q".to_string(), tuple![2])]);
    }

    #[test]
    fn derivability_probe_respects_the_dead_view() {
        let program =
            parse_program("tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).").unwrap();
        let mut db = Database::new();
        db.insert("edge", tuple![1, 2]);
        db.insert("edge", tuple![1, 3]);
        db.insert("edge", tuple![3, 2]);
        db.insert("tc", tuple![1, 2]);
        db.insert("tc", tuple![1, 3]);
        db.insert("tc", tuple![3, 2]);
        let engine = Engine::default();
        let base = CompiledRule::compile(&program.rules[0], 0).unwrap();
        let step = CompiledRule::compile(&program.rules[1], 1).unwrap();
        // tc(1,2) is directly supported by edge(1,2)…
        let empty = Database::new();
        assert!(engine.derives_fact(&base, &db, &empty, &tuple![1, 2]).unwrap());
        // …and still derivable via 1→3→2 when edge(1,2) is dead
        let mut dead = Database::new();
        dead.insert("edge", tuple![1, 2]);
        assert!(!engine.derives_fact(&base, &db, &dead, &tuple![1, 2]).unwrap());
        assert!(engine.derives_fact(&step, &db, &dead, &tuple![1, 2]).unwrap());
        // kill the alternative path too
        dead.insert("tc", tuple![1, 3]);
        assert!(!engine.derives_fact(&step, &db, &dead, &tuple![1, 2]).unwrap());
        // a fact the rule could never produce
        assert!(!engine.derives_fact(&base, &db, &empty, &tuple![9, 9]).unwrap());
    }

    #[test]
    fn same_generation_nonlinear_recursion() {
        let db = run(r#"
            par("a", "x"). par("b", "x"). par("c", "y"). par("d", "y").
            par("x", "r"). par("y", "r"). par("r", "top").
            sg(X, X) :- par(X, _).
            sg(X, Y) :- par(X, XP), sg(XP, YP), par(Y, YP).
        "#);
        // a,b same generation; c,d same generation; a,c same generation (both
        // grandchildren of r)
        let has = |x: &str, y: &str| db.contains("sg", &tuple![x, y]);
        assert!(has("a", "b"));
        assert!(has("a", "c"));
        assert!(has("x", "y"));
        assert!(!has("a", "x"));
    }
}
