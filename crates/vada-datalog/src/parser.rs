//! Recursive-descent parser producing [`Program`]s and stand-alone queries.

use std::collections::HashMap;

use vada_common::{Result, VadaError, Value};

use crate::ast::{
    AggFunc, ArithOp, Atom, CmpOp, Expr, HeadTerm, Literal, Program, Rule, Term,
};
use crate::lexer::{lex, Token, TokenKind};

/// Parse a full program (facts, rules).
pub fn parse_program(source: &str) -> Result<Program> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    let mut rules = Vec::new();
    while !p.at_eof() {
        rules.push(p.rule()?);
    }
    Ok(Program { rules })
}

/// Parse a stand-alone conjunctive query — a rule body such as
/// `match(S, T, Score), Score >= 0.5` — into a rule with head predicate
/// `__query` whose head variables are the body's variables in order of first
/// occurrence. Transducer input dependencies are expressed this way.
pub fn parse_query(source: &str) -> Result<Rule> {
    let tokens = lex(source)?;
    let mut p = Parser::new(tokens);
    let body = p.body()?;
    // optional trailing dot
    if p.peek_kind() == &TokenKind::Dot {
        p.advance();
    }
    p.expect_eof()?;
    // head variables: order of first occurrence in the body
    let mut head_terms = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut ordered: Vec<(usize, String)> = p.vars.iter().map(|(n, i)| (*i, n.clone())).collect();
    ordered.sort();
    for (id, name) in ordered {
        if name != "_" && seen.insert(id) {
            head_terms.push(HeadTerm::Term(Term::Var(id, name)));
        }
    }
    Ok(Rule {
        head_pred: "__query".into(),
        head_terms,
        body,
        var_count: p.next_var,
        var_names: p.var_names.clone(),
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    vars: HashMap<String, usize>,
    var_names: Vec<String>,
    next_var: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser { tokens, pos: 0, vars: HashMap::new(), var_names: Vec::new(), next_var: 0 }
    }

    fn reset_rule_scope(&mut self) {
        self.vars.clear();
        self.var_names.clear();
        self.next_var = 0;
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2_kind(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek_kind(), TokenKind::Eof)
    }

    fn err_here(&self, msg: &str) -> VadaError {
        let t = self.peek();
        VadaError::Parse(format!("{}:{}: {msg}, found {}", t.line, t.col, t.kind))
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token> {
        if self.peek_kind() == &kind {
            Ok(self.advance())
        } else {
            Err(self.err_here(&format!("expected {kind}")))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.err_here("expected end of input"))
        }
    }

    fn var_id(&mut self, name: &str) -> usize {
        if name == "_" {
            // every wildcard is a fresh variable
            let id = self.next_var;
            self.next_var += 1;
            self.var_names.push("_".into());
            return id;
        }
        if let Some(&id) = self.vars.get(name) {
            return id;
        }
        let id = self.next_var;
        self.next_var += 1;
        self.vars.insert(name.to_string(), id);
        self.var_names.push(name.to_string());
        id
    }

    /// rule := head ( ":-" body )? "."
    fn rule(&mut self) -> Result<Rule> {
        self.reset_rule_scope();
        let (head_pred, head_terms) = self.head()?;
        let body = if self.peek_kind() == &TokenKind::Implies {
            self.advance();
            self.body()?
        } else {
            Vec::new()
        };
        self.expect(TokenKind::Dot)?;
        let rule = Rule {
            head_pred,
            head_terms,
            body,
            var_count: self.next_var,
            var_names: self.var_names.clone(),
        };
        self.check_safety(&rule)?;
        Ok(rule)
    }

    /// Safety: every variable in a negated atom or in the RHS of a
    /// comparison must be bindable, and non-existential head variables must
    /// appear in a positive literal or be assignable via `=`. We use a
    /// permissive but principled rule: a variable is *bindable* if it occurs
    /// in a positive atom or on either side of an `=` whose other side is
    /// bindable (transitively). Negations and non-`=` comparisons require all
    /// their variables bindable.
    fn check_safety(&self, rule: &Rule) -> Result<()> {
        use std::collections::BTreeSet;
        let mut bound: BTreeSet<usize> = rule.positive_vars();
        // propagate through `=` assignments until fixpoint
        loop {
            let mut changed = false;
            for lit in &rule.body {
                if let Literal::Cmp(CmpOp::Eq, l, r) = lit {
                    let mut lv = BTreeSet::new();
                    let mut rv = BTreeSet::new();
                    l.vars(&mut lv);
                    r.vars(&mut rv);
                    if rv.iter().all(|v| bound.contains(v)) {
                        for v in &lv {
                            changed |= bound.insert(*v);
                        }
                    }
                    if lv.iter().all(|v| bound.contains(v)) {
                        for v in &rv {
                            changed |= bound.insert(*v);
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for lit in &rule.body {
            match lit {
                Literal::Neg(a) => {
                    let mut vs = BTreeSet::new();
                    a.vars(&mut vs);
                    for v in vs {
                        if !bound.contains(&v) {
                            return Err(VadaError::Program(format!(
                                "unsafe rule `{rule}`: variable `{}` in negated atom is not bound by a positive literal",
                                rule.var_names[v]
                            )));
                        }
                    }
                }
                Literal::Cmp(op, l, r) if *op != CmpOp::Eq => {
                    let mut vs = BTreeSet::new();
                    l.vars(&mut vs);
                    r.vars(&mut vs);
                    for v in vs {
                        if !bound.contains(&v) {
                            return Err(VadaError::Program(format!(
                                "unsafe rule `{rule}`: variable `{}` in comparison is not bound",
                                rule.var_names[v]
                            )));
                        }
                    }
                }
                _ => {}
            }
        }
        // aggregate variables must be bound
        for ht in &rule.head_terms {
            if let HeadTerm::Agg(_, v, name) = ht {
                if !bound.contains(v) {
                    return Err(VadaError::Program(format!(
                        "unsafe rule `{rule}`: aggregated variable `{name}` is not bound"
                    )));
                }
            }
        }
        Ok(())
    }

    /// head := ident ( "(" headterm ("," headterm)* ")" )?
    fn head(&mut self) -> Result<(String, Vec<HeadTerm>)> {
        let pred = match self.advance() {
            Token { kind: TokenKind::Ident(s), .. } => s,
            t => {
                return Err(VadaError::Parse(format!(
                    "{}:{}: expected predicate name, found {}",
                    t.line, t.col, t.kind
                )))
            }
        };
        let mut terms = Vec::new();
        if self.peek_kind() == &TokenKind::LParen {
            self.advance();
            loop {
                terms.push(self.head_term()?);
                match self.peek_kind() {
                    TokenKind::Comma => {
                        self.advance();
                    }
                    TokenKind::RParen => {
                        self.advance();
                        break;
                    }
                    _ => return Err(self.err_here("expected `,` or `)` in head")),
                }
            }
        }
        Ok((pred, terms))
    }

    fn agg_func(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }

    fn head_term(&mut self) -> Result<HeadTerm> {
        // aggregate: aggname "(" Var ")"
        if let TokenKind::Ident(name) = self.peek_kind() {
            if let Some(func) = Self::agg_func(name) {
                if self.peek2_kind() == &TokenKind::LParen {
                    self.advance(); // func name
                    self.advance(); // (
                    let var_tok = self.advance();
                    let vname = match var_tok.kind {
                        TokenKind::Variable(v) => v,
                        k => {
                            return Err(VadaError::Parse(format!(
                                "{}:{}: aggregate argument must be a variable, found {k}",
                                var_tok.line, var_tok.col
                            )))
                        }
                    };
                    self.expect(TokenKind::RParen)?;
                    let id = self.var_id(&vname);
                    return Ok(HeadTerm::Agg(func, id, vname));
                }
            }
        }
        Ok(HeadTerm::Term(self.term()?))
    }

    /// body := literal ("," literal)*
    fn body(&mut self) -> Result<Vec<Literal>> {
        let mut lits = vec![self.literal()?];
        while self.peek_kind() == &TokenKind::Comma {
            self.advance();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    fn literal(&mut self) -> Result<Literal> {
        if self.peek_kind() == &TokenKind::Not {
            self.advance();
            let atom = self.atom()?;
            return Ok(Literal::Neg(atom));
        }
        // an atom starts with Ident followed by `(` or a 0-ary ident at a
        // literal boundary; everything else is an expression comparison.
        if matches!(self.peek_kind(), TokenKind::Ident(_)) {
            let next_is_cmp = matches!(
                self.peek2_kind(),
                TokenKind::Eq
                    | TokenKind::Ne
                    | TokenKind::Lt
                    | TokenKind::Le
                    | TokenKind::Gt
                    | TokenKind::Ge
                    | TokenKind::Plus
                    | TokenKind::Minus
                    | TokenKind::Star
                    | TokenKind::Slash
                    | TokenKind::Percent
            );
            if !next_is_cmp {
                return Ok(Literal::Pos(self.atom()?));
            }
        }
        // comparison literal
        let lhs = self.expr()?;
        let op = match self.peek_kind() {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            _ => return Err(self.err_here("expected comparison operator")),
        };
        self.advance();
        let rhs = self.expr()?;
        Ok(Literal::Cmp(op, lhs, rhs))
    }

    fn atom(&mut self) -> Result<Atom> {
        let pred = match self.advance() {
            Token { kind: TokenKind::Ident(s), .. } => s,
            t => {
                return Err(VadaError::Parse(format!(
                    "{}:{}: expected predicate name, found {}",
                    t.line, t.col, t.kind
                )))
            }
        };
        let mut terms = Vec::new();
        if self.peek_kind() == &TokenKind::LParen {
            self.advance();
            if self.peek_kind() == &TokenKind::RParen {
                self.advance();
            } else {
                loop {
                    terms.push(self.term()?);
                    match self.peek_kind() {
                        TokenKind::Comma => {
                            self.advance();
                        }
                        TokenKind::RParen => {
                            self.advance();
                            break;
                        }
                        _ => return Err(self.err_here("expected `,` or `)` in atom")),
                    }
                }
            }
        }
        Ok(Atom { pred, terms })
    }

    fn term(&mut self) -> Result<Term> {
        match self.advance() {
            Token { kind: TokenKind::Variable(v), .. } => {
                let id = self.var_id(&v);
                Ok(Term::Var(id, v))
            }
            Token { kind: TokenKind::Int(i), .. } => Ok(Term::Const(Value::Int(i))),
            Token { kind: TokenKind::Float(f), .. } => Ok(Term::Const(Value::Float(f))),
            Token { kind: TokenKind::Str(s), .. } => Ok(Term::Const(Value::str(s))),
            Token { kind: TokenKind::Minus, .. } => match self.advance() {
                Token { kind: TokenKind::Int(i), .. } => Ok(Term::Const(Value::Int(-i))),
                Token { kind: TokenKind::Float(f), .. } => Ok(Term::Const(Value::Float(-f))),
                t => Err(VadaError::Parse(format!(
                    "{}:{}: expected number after `-`, found {}",
                    t.line, t.col, t.kind
                ))),
            },
            Token { kind: TokenKind::Ident(s), .. } => match s.as_str() {
                "true" => Ok(Term::Const(Value::Bool(true))),
                "false" => Ok(Term::Const(Value::Bool(false))),
                "null" => Ok(Term::Const(Value::Null)),
                // lowercase identifiers are symbolic string constants
                _ => Ok(Term::Const(Value::str(s))),
            },
            t => Err(VadaError::Parse(format!(
                "{}:{}: expected term, found {}",
                t.line, t.col, t.kind
            ))),
        }
    }

    /// expr := mul (("+"|"-") mul)*
    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => ArithOp::Add,
                TokenKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.mul()?;
            lhs = Expr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// mul := primary (("*"|"/"|"mod") primary)*
    fn mul(&mut self) -> Result<Expr> {
        let mut lhs = self.primary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => ArithOp::Mul,
                TokenKind::Slash => ArithOp::Div,
                TokenKind::Percent => ArithOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.primary()?;
            lhs = Expr::BinOp(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// primary := "(" expr ")" | term
    fn primary(&mut self) -> Result<Expr> {
        if self.peek_kind() == &TokenKind::LParen {
            self.advance();
            let e = self.expr()?;
            self.expect(TokenKind::RParen)?;
            return Ok(e);
        }
        Ok(Expr::Term(self.term()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;

    #[test]
    fn parses_facts_and_rules() {
        let p = parse_program(
            r#"
            parent("ann", "bob").
            parent("bob", "carol").
            ancestor(X, Y) :- parent(X, Y).
            ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
            "#,
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert!(p.rules[0].is_fact());
        assert!(!p.rules[2].is_fact());
        assert_eq!(p.rules[3].var_count, 3);
    }

    #[test]
    fn parses_negation_and_comparison() {
        let p = parse_program("adult(X) :- person(X, A), A >= 18, not minor(X).").unwrap();
        let r = &p.rules[0];
        assert_eq!(r.body.len(), 3);
        assert!(matches!(r.body[1], Literal::Cmp(CmpOp::Ge, _, _)));
        assert!(matches!(r.body[2], Literal::Neg(_)));
    }

    #[test]
    fn parses_arithmetic_assignment() {
        let p = parse_program("vat(S, T) :- listing(S, P), T = P * 12 / 10.").unwrap();
        assert!(matches!(p.rules[0].body[1], Literal::Cmp(CmpOp::Eq, _, _)));
    }

    #[test]
    fn parses_aggregates() {
        let p = parse_program("avg_price(PC, avg(P)) :- property(PC, P).").unwrap();
        assert!(p.rules[0].has_aggregate());
    }

    #[test]
    fn parses_zero_ary_atoms() {
        let p = parse_program("ready :- sources_loaded, not blocked.").unwrap();
        assert_eq!(p.rules[0].head_pred, "ready");
        assert_eq!(p.rules[0].body.len(), 2);
    }

    #[test]
    fn symbolic_constants_are_strings() {
        let p = parse_program("p(foo, Bar) :- q(Bar).").unwrap();
        assert_eq!(
            p.rules[0].head_terms[0],
            HeadTerm::Term(Term::Const(Value::str("foo")))
        );
    }

    #[test]
    fn negative_numbers() {
        let p = parse_program("p(-3). q(X) :- r(X), X > -1.5.").unwrap();
        assert!(p.rules[0].is_fact());
    }

    #[test]
    fn wildcards_are_fresh() {
        let p = parse_program("p(X) :- q(X, _, _).").unwrap();
        assert_eq!(p.rules[0].var_count, 3);
    }

    #[test]
    fn unsafe_negation_rejected() {
        let err = parse_program("p(X) :- q(X), not r(Y).").unwrap_err();
        assert!(err.to_string().contains("unsafe"));
    }

    #[test]
    fn unsafe_comparison_rejected() {
        assert!(parse_program("p(X) :- q(X), Y > 3.").is_err());
    }

    #[test]
    fn assignment_binds_vars_for_safety() {
        // Y is bound via Y = X + 1, so the comparison on Y is safe
        assert!(parse_program("p(Y) :- q(X), Y = X + 1, Y > 3.").is_ok());
    }

    #[test]
    fn existential_head_allowed() {
        let p = parse_program("owner(X, Z) :- property(X).").unwrap();
        assert_eq!(p.rules[0].existential_vars().len(), 1);
    }

    #[test]
    fn parse_query_collects_head_vars() {
        let q = parse_query("matched(S, T, Score), Score >= 0.5").unwrap();
        assert_eq!(q.head_pred, "__query");
        assert_eq!(q.head_terms.len(), 3);
        assert_eq!(q.body.len(), 2);
    }

    #[test]
    fn parse_error_positions() {
        let err = parse_program("p(X :- q(X).").unwrap_err();
        assert!(err.to_string().contains("1:"), "{err}");
    }

    #[test]
    fn display_round_trip_reparses() {
        let src = r#"tc(X, Z) :- tc(X, Y), edge(Y, Z), not removed(X, Z), X != Z."#;
        let p1 = parse_program(src).unwrap();
        let printed = p1.to_string();
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2);
    }
}
