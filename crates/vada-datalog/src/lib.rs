//! # vada-datalog
//!
//! A from-scratch Datalog± reasoner in the style of Vadalog, the language the
//! VADA architecture (SIGMOD '17) uses for three jobs:
//!
//! 1. **Transducer dependencies** — each wrangling component declares the
//!    data it needs as a Datalog query over the knowledge base.
//! 2. **Orchestration** — the network transducer reasons over component
//!    readiness facts.
//! 3. **Schema mappings** — source-to-target mappings are Datalog rules that
//!    this engine executes to populate the target schema.
//!
//! ## Language
//!
//! ```text
//! % facts
//! parent("ann", "bob").
//! % recursion
//! ancestor(X, Y) :- parent(X, Y).
//! ancestor(X, Z) :- ancestor(X, Y), parent(Y, Z).
//! % stratified negation, comparisons, arithmetic
//! affordable(S, P) :- listing(S, P), P < 300000, not blacklisted(S).
//! vat(S, T) :- listing(S, P), T = P * 12 / 10.
//! % aggregation (non-recursive)
//! avg_price(PC, avg(P)) :- property(PC, P).
//! % existential head variables (Datalog±): Z is invented via a skolem term
//! has_owner(X, Z) :- property_of_interest(X).
//! ```
//!
//! ## Evaluation
//!
//! Programs are stratified (negation and aggregation must not occur in a
//! recursive cycle), then each stratum runs to fixpoint with **semi-naive**
//! evaluation. Existential head variables are skolemised deterministically;
//! a depth guard bounds skolem nesting so that non-warded programs fail fast
//! instead of diverging (Vadalog guarantees termination via wardedness; we
//! approximate the guarantee with the guard and document the difference in
//! DESIGN.md).

pub mod analysis;
pub mod ast;
pub mod builtins;
pub mod cache;
pub mod engine;
pub mod incremental;
pub mod lexer;
pub mod magic;
pub mod parser;
pub mod pretty;
pub mod skolem;

pub use analysis::{stratify, Stratification};
pub use ast::{Atom, CmpOp, Expr, HeadTerm, Literal, Program, Rule, Term};
pub use cache::{CacheDelta, DeltaBatch, IndexCache, QueryCache};
pub use engine::{Database, Engine, EngineConfig};
pub use incremental::{DeltaMode, DeltaOutcome, IncrementalSession};
pub use magic::Demand;
pub use parser::parse_program;
pub use vada_common::QueryMode;

use vada_common::Result;

/// Parse and evaluate `source` against an initial fact database, returning
/// the resulting database (input facts plus everything derived).
///
/// Convenience entry point for one-shot use; long-lived callers should keep
/// an [`Engine`] around.
pub fn eval(source: &str, input: Database) -> Result<Database> {
    let program = parse_program(source)?;
    Engine::new(EngineConfig::default()).run(&program, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_eval_transitive_closure() {
        let db = eval(
            r#"
            edge(1, 2). edge(2, 3). edge(3, 4).
            tc(X, Y) :- edge(X, Y).
            tc(X, Z) :- tc(X, Y), edge(Y, Z).
            "#,
            Database::new(),
        )
        .unwrap();
        assert_eq!(db.facts("tc").len(), 6);
    }
}
