//! The third role Vadalog plays in the paper (§2): *coordinating the
//! orchestration*. This test expresses the network-transducer readiness
//! logic itself as a Datalog program over dependency facts and checks it
//! derives the same eligible set the Rust orchestrator computes.

use vada_common::tuple;
use vada_datalog::{parse_program, Database, Engine};

/// Orchestration state as facts, readiness as rules.
const COORDINATION: &str = r#"
    % a transducer is blocked if some input it needs is missing
    blocked(T) :- needs(T, I), not available(I).
    % eligible = declared, not blocked, and not already up to date
    eligible(T) :- transducer(T), not blocked(T), not up_to_date(T).
    % activity priority: pick matching before mapping before quality
    priority(T, P) :- transducer(T), activity(T, A), activity_rank(A, P).
    best_rank(min(P)) :- eligible(T), priority(T, P).
    chosen(T) :- eligible(T), priority(T, P), best_rank(P).
"#;

fn base_db() -> Database {
    let mut db = Database::new();
    for (t, a) in [
        ("schema_matching", "matching"),
        ("instance_matching", "matching"),
        ("mapping_generation", "mapping"),
        ("mapping_quality", "quality"),
    ] {
        db.insert("transducer", tuple![t]);
        db.insert("activity", tuple![t, a]);
    }
    for (a, r) in [("matching", 1), ("mapping", 2), ("quality", 3)] {
        db.insert("activity_rank", tuple![a, r]);
    }
    db.insert("needs", tuple!["schema_matching", "source_schema"]);
    db.insert("needs", tuple!["schema_matching", "target_schema"]);
    db.insert("needs", tuple!["instance_matching", "context_instances"]);
    db.insert("needs", tuple!["mapping_generation", "matches"]);
    db.insert("needs", tuple!["mapping_quality", "mappings"]);
    db
}

fn eligible(db: &Database) -> Vec<String> {
    db.facts("eligible")
        .iter()
        .map(|t| t[0].to_string())
        .collect()
}

#[test]
fn readiness_derived_from_dependency_facts() {
    let program = parse_program(COORDINATION).unwrap();
    let mut db = base_db();
    db.insert("available", tuple!["source_schema"]);
    db.insert("available", tuple!["target_schema"]);
    let out = Engine::default().run(&program, db).unwrap();
    // only schema matching has everything it needs
    assert_eq!(eligible(&out), vec!["schema_matching"]);
    assert_eq!(out.facts("chosen").len(), 1);
}

#[test]
fn new_facts_unlock_more_transducers() {
    let program = parse_program(COORDINATION).unwrap();
    let mut db = base_db();
    for i in ["source_schema", "target_schema", "context_instances", "matches"] {
        db.insert("available", tuple![i]);
    }
    db.insert("up_to_date", tuple!["schema_matching"]);
    let out = Engine::default().run(&program, db).unwrap();
    let mut e = eligible(&out);
    e.sort();
    assert_eq!(e, vec!["instance_matching", "mapping_generation"]);
    // the priority scheme picks the matcher first (lower activity rank)
    assert_eq!(out.facts("chosen").len(), 1);
    assert_eq!(out.facts("chosen")[0], tuple!["instance_matching"]);
}

#[test]
fn nothing_eligible_reports_empty() {
    let program = parse_program(COORDINATION).unwrap();
    let out = Engine::default().run(&program, base_db()).unwrap();
    assert!(eligible(&out).is_empty());
    assert!(out.facts("chosen").is_empty());
}
