//! Property-based tests for the Datalog engine: the fixpoint must agree
//! with an independently computed reference closure, positive programs must
//! be monotone in their input, and evaluation must be deterministic.

use proptest::prelude::*;

use vada_common::{tuple, Tuple};
use vada_datalog::{parse_program, Database, Engine};

fn edges_db(edges: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert("edge", tuple![a as i64, b as i64]);
    }
    db
}

const TC_PROGRAM: &str = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).";

/// Reference transitive closure via iterated composition over pair sets.
fn reference_tc(edges: &[(u8, u8)]) -> std::collections::BTreeSet<(u8, u8)> {
    let mut tc: std::collections::BTreeSet<(u8, u8)> = edges.iter().copied().collect();
    loop {
        let mut added = Vec::new();
        for &(a, b) in &tc {
            for &(c, d) in edges {
                if b == c && !tc.contains(&(a, d)) {
                    added.push((a, d));
                }
            }
        }
        if added.is_empty() {
            break;
        }
        tc.extend(added);
    }
    tc
}

proptest! {
    #[test]
    fn seminaive_matches_reference_closure(
        edges in proptest::collection::vec((0u8..12, 0u8..12), 0..40)
    ) {
        let program = parse_program(TC_PROGRAM).unwrap();
        let db = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let got: std::collections::BTreeSet<(u8, u8)> = db
            .facts("tc")
            .iter()
            .map(|t| (t[0].as_int().unwrap() as u8, t[1].as_int().unwrap() as u8))
            .collect();
        prop_assert_eq!(got, reference_tc(&edges));
    }

    #[test]
    fn fixpoint_is_idempotent(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 0..30)
    ) {
        // the engine's output is a fixpoint: feeding it back in as the
        // input database and re-running the same program adds no facts
        let program = parse_program(TC_PROGRAM).unwrap();
        let once = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let twice = Engine::default().run(&program, once.clone()).unwrap();
        let preds: std::collections::BTreeSet<&str> =
            once.predicates().into_iter().chain(twice.predicates()).collect();
        for pred in preds {
            prop_assert_eq!(
                twice.facts(pred).len(),
                once.facts(pred).len(),
                "re-running to fixpoint changed the fact count for {}", pred
            );
            for t in twice.facts(pred) {
                prop_assert!(once.contains(pred, t), "re-run invented fact {}({})", pred, t);
            }
        }
    }

    #[test]
    fn positive_programs_are_monotone(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 0..30),
        extra in proptest::collection::vec((0u8..10, 0u8..10), 0..10)
    ) {
        let program = parse_program(TC_PROGRAM).unwrap();
        let small = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let mut all = edges.clone();
        all.extend(&extra);
        let large = Engine::default().run(&program, edges_db(&all)).unwrap();
        for t in small.facts("tc") {
            prop_assert!(large.contains("tc", t), "lost fact {t} after adding inputs");
        }
    }

    #[test]
    fn evaluation_is_deterministic(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 0..30)
    ) {
        let src = format!(
            "{TC_PROGRAM}\n\
             deg(X, count(Y)) :- edge(X, Y).\n\
             invented(X, Z) :- deg(X, N), N >= 2."
        );
        let program = parse_program(&src).unwrap();
        let a = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let b = Engine::default().run(&program, edges_db(&edges)).unwrap();
        for pred in a.predicates() {
            let fa: Vec<&Tuple> = a.facts(pred).iter().collect();
            let fb: Vec<&Tuple> = b.facts(pred).iter().collect();
            prop_assert_eq!(fa, fb, "nondeterministic facts for {}", pred);
        }
    }

    #[test]
    fn negation_complements_positive(
        edges in proptest::collection::vec((0u8..8, 0u8..8), 0..20)
    ) {
        // every (x, y) node pair is in exactly one of reach / noreach
        let src = "
            node(X) :- edge(X, _).
            node(Y) :- edge(_, Y).
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            noreach(X, Y) :- node(X), node(Y), not reach(X, Y).
        ";
        let program = parse_program(src).unwrap();
        let db = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let nodes: Vec<i64> = db.facts("node").iter().map(|t| t[0].as_int().unwrap()).collect();
        for &x in &nodes {
            for &y in &nodes {
                let pair = tuple![x, y];
                let in_reach = db.contains("reach", &pair);
                let in_noreach = db.contains("noreach", &pair);
                prop_assert!(in_reach ^ in_noreach,
                    "pair ({x},{y}) reach={in_reach} noreach={in_noreach}");
            }
        }
    }

    #[test]
    fn aggregate_counts_match_manual_grouping(
        pairs in proptest::collection::vec((0u8..6, 0i64..100), 1..40)
    ) {
        let mut db = Database::new();
        for &(g, v) in &pairs {
            db.insert("item", tuple![g as i64, v]);
        }
        let program = parse_program("cnt(G, count(V)) :- item(G, V).").unwrap();
        let out = Engine::default().run(&program, db.clone()).unwrap();
        // manual set-semantics grouping
        let mut groups: std::collections::BTreeMap<i64, std::collections::BTreeSet<i64>> =
            Default::default();
        for t in db.facts("item") {
            groups.entry(t[0].as_int().unwrap()).or_default().insert(t[1].as_int().unwrap());
        }
        prop_assert_eq!(out.facts("cnt").len(), groups.len());
        for t in out.facts("cnt") {
            let g = t[0].as_int().unwrap();
            prop_assert_eq!(t[1].as_int().unwrap() as usize, groups[&g].len());
        }
    }
}
