//! Property-based tests for the Datalog engine: the fixpoint must agree
//! with an independently computed reference closure, positive programs must
//! be monotone in their input, and evaluation must be deterministic.

use proptest::prelude::*;

use vada_common::{tuple, Tuple};
use vada_datalog::{parse_program, Database, Engine};

fn edges_db(edges: &[(u8, u8)]) -> Database {
    let mut db = Database::new();
    for &(a, b) in edges {
        db.insert("edge", tuple![a as i64, b as i64]);
    }
    db
}

const TC_PROGRAM: &str = "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).";

/// Reference transitive closure via iterated composition over pair sets.
fn reference_tc(edges: &[(u8, u8)]) -> std::collections::BTreeSet<(u8, u8)> {
    let mut tc: std::collections::BTreeSet<(u8, u8)> = edges.iter().copied().collect();
    loop {
        let mut added = Vec::new();
        for &(a, b) in &tc {
            for &(c, d) in edges {
                if b == c && !tc.contains(&(a, d)) {
                    added.push((a, d));
                }
            }
        }
        if added.is_empty() {
            break;
        }
        tc.extend(added);
    }
    tc
}

proptest! {
    #[test]
    fn seminaive_matches_reference_closure(
        edges in proptest::collection::vec((0u8..12, 0u8..12), 0..40)
    ) {
        let program = parse_program(TC_PROGRAM).unwrap();
        let db = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let got: std::collections::BTreeSet<(u8, u8)> = db
            .facts("tc")
            .iter()
            .map(|t| (t[0].as_int().unwrap() as u8, t[1].as_int().unwrap() as u8))
            .collect();
        prop_assert_eq!(got, reference_tc(&edges));
    }

    #[test]
    fn fixpoint_is_idempotent(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 0..30)
    ) {
        // the engine's output is a fixpoint: feeding it back in as the
        // input database and re-running the same program adds no facts
        let program = parse_program(TC_PROGRAM).unwrap();
        let once = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let twice = Engine::default().run(&program, once.clone()).unwrap();
        let preds: std::collections::BTreeSet<&str> =
            once.predicates().into_iter().chain(twice.predicates()).collect();
        for pred in preds {
            prop_assert_eq!(
                twice.facts(pred).len(),
                once.facts(pred).len(),
                "re-running to fixpoint changed the fact count for {}", pred
            );
            for t in twice.facts(pred) {
                prop_assert!(once.contains(pred, t), "re-run invented fact {}({})", pred, t);
            }
        }
    }

    #[test]
    fn positive_programs_are_monotone(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 0..30),
        extra in proptest::collection::vec((0u8..10, 0u8..10), 0..10)
    ) {
        let program = parse_program(TC_PROGRAM).unwrap();
        let small = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let mut all = edges.clone();
        all.extend(&extra);
        let large = Engine::default().run(&program, edges_db(&all)).unwrap();
        for t in small.facts("tc") {
            prop_assert!(large.contains("tc", t), "lost fact {t} after adding inputs");
        }
    }

    #[test]
    fn evaluation_is_deterministic(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 0..30)
    ) {
        let src = format!(
            "{TC_PROGRAM}\n\
             deg(X, count(Y)) :- edge(X, Y).\n\
             invented(X, Z) :- deg(X, N), N >= 2."
        );
        let program = parse_program(&src).unwrap();
        let a = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let b = Engine::default().run(&program, edges_db(&edges)).unwrap();
        for pred in a.predicates() {
            let fa: Vec<&Tuple> = a.facts(pred).iter().collect();
            let fb: Vec<&Tuple> = b.facts(pred).iter().collect();
            prop_assert_eq!(fa, fb, "nondeterministic facts for {}", pred);
        }
    }

    #[test]
    fn negation_complements_positive(
        edges in proptest::collection::vec((0u8..8, 0u8..8), 0..20)
    ) {
        // every (x, y) node pair is in exactly one of reach / noreach
        let src = "
            node(X) :- edge(X, _).
            node(Y) :- edge(_, Y).
            reach(X, Y) :- edge(X, Y).
            reach(X, Z) :- reach(X, Y), edge(Y, Z).
            noreach(X, Y) :- node(X), node(Y), not reach(X, Y).
        ";
        let program = parse_program(src).unwrap();
        let db = Engine::default().run(&program, edges_db(&edges)).unwrap();
        let nodes: Vec<i64> = db.facts("node").iter().map(|t| t[0].as_int().unwrap()).collect();
        for &x in &nodes {
            for &y in &nodes {
                let pair = tuple![x, y];
                let in_reach = db.contains("reach", &pair);
                let in_noreach = db.contains("noreach", &pair);
                prop_assert!(in_reach ^ in_noreach,
                    "pair ({x},{y}) reach={in_reach} noreach={in_noreach}");
            }
        }
    }

    #[test]
    fn counting_invariants_hold_under_retraction(
        rows in proptest::collection::vec((0u8..6, 0u8..12), 1..30),
        links in proptest::collection::vec((0u8..6, 0u8..12), 1..20),
        kills in proptest::collection::vec((0u8..2, 0u8..30), 1..8)
    ) {
        // a two-level non-recursive program maintained by counting: q has
        // one derivation per matching r row, wide multiplies q by w
        use vada_datalog::incremental::{DeltaMode, IncrementalSession};
        use vada_datalog::EngineConfig;
        let src = "q(X) :- r(X, _). wide(X, Z) :- q(X), w(X, Z).";
        let mut input = Database::new();
        for &(x, y) in &rows {
            input.insert("r", tuple![x as i64, y as i64]);
        }
        for &(x, z) in &links {
            input.insert("w", tuple![x as i64, z as i64]);
        }
        let mut session = IncrementalSession::new(EngineConfig::default(), src).unwrap();
        session.run_full(input.clone()).unwrap();

        // retract a random subset of existing facts (structural pick)
        let mut removals: Vec<(String, Tuple)> = Vec::new();
        for &(which, nth) in &kills {
            let pred = if which == 0 { "r" } else { "w" };
            let facts = input.facts(pred);
            if facts.is_empty() {
                continue;
            }
            removals.push((pred.to_string(), facts[nth as usize % facts.len()].clone()));
        }
        let mut shrunk = Database::new();
        for pred in input.predicates() {
            for t in input.facts(pred) {
                if !removals.iter().any(|(p, d)| p == pred && d == t) {
                    shrunk.insert(pred, t.clone());
                }
            }
        }
        session.retract(removals).unwrap();
        prop_assert_eq!(
            session.last_outcome().unwrap().mode,
            DeltaMode::Incremental,
            "counting never falls back on this program: {:?}",
            session.last_outcome()
        );

        // reference: the scratch fixpoint over the shrunk input, with
        // derivation counts re-enumerated per rule
        let program = parse_program(src).unwrap();
        let scratch = Engine::default().run(&program, shrunk.clone()).unwrap();
        for pred in ["q", "wide"] {
            let counts = session.derivation_counts(pred).unwrap();
            // zero iff the fact left the fixpoint (counts drop their zero
            // entries, so the key set IS the positive-count set)
            let alive: std::collections::BTreeSet<&Tuple> = counts.keys().collect();
            let expect: std::collections::BTreeSet<&Tuple> = scratch.facts(pred).iter().collect();
            prop_assert_eq!(alive, expect, "count support drifted for {}", pred);
            prop_assert_eq!(
                session.database().facts(pred),
                scratch.facts(pred),
                "facts or order drifted for {}", pred
            );
        }
    }

    #[test]
    fn dred_restores_exactly_the_still_derivable_facts(
        edges in proptest::collection::vec((0u8..8, 0u8..8), 1..24),
        kills in proptest::collection::vec(0u8..24, 1..5)
    ) {
        // recursive closure under deletion: DRed over-deletes everything
        // reachable from the removed edges, then re-derives what survives.
        // Whatever the path taken (pure removal commits; any restoration
        // falls back), the result must equal the scratch fixpoint — i.e.
        // phase 2 restored exactly the still-derivable over-deletions.
        use vada_datalog::incremental::{DeltaMode, IncrementalSession};
        use vada_datalog::EngineConfig;
        let mut input = edges_db(&edges);
        let mut session = IncrementalSession::new(EngineConfig::default(), TC_PROGRAM).unwrap();
        session.run_full(input.clone()).unwrap();

        let mut removals: Vec<(String, Tuple)> = Vec::new();
        for &nth in &kills {
            let facts = input.facts("edge");
            removals.push(("edge".to_string(), facts[nth as usize % facts.len()].clone()));
        }
        for (_, t) in &removals {
            input.remove("edge", t);
        }
        session.retract(removals).unwrap();

        let program = parse_program(TC_PROGRAM).unwrap();
        let scratch = Engine::default().run(&program, input.clone()).unwrap();
        prop_assert_eq!(
            session.database().facts("tc"),
            scratch.facts("tc"),
            "tc diverged from scratch after retraction ({:?})",
            session.last_outcome().map(|o| o.mode)
        );
        prop_assert_eq!(session.database().facts("edge"), scratch.facts("edge"));
        let out = session.last_outcome().unwrap();
        match out.mode {
            // pure removal: nothing re-derived, every removed tc fact is
            // genuinely underivable (it is absent from scratch)
            DeltaMode::Incremental => prop_assert_eq!(out.rederived_facts, 0, "{:?}", out),
            // a restoration happened: the fallback reason names DRed
            DeltaMode::FullFallback => prop_assert!(
                out.fallback_reason.as_deref().unwrap().contains("re-derived"),
                "{:?}", out
            ),
            DeltaMode::Bootstrap => prop_assert!(false, "unexpected bootstrap"),
        }
    }

    #[test]
    fn magic_restriction_equals_full_on_demanded_atoms(
        edges in proptest::collection::vec((0u8..10, 0u8..10), 1..40),
        start in 0u8..10
    ) {
        // the demand-restricted fixpoint, projected onto the demanded
        // atoms, must equal the undirected fixpoint projected onto the
        // same atoms — and since the directed run keeps exactly the
        // demanded atoms, its database IS that projection of the full run
        // (same facts, same insertion order)
        use vada_datalog::parser::parse_query;
        let program = parse_program(TC_PROGRAM).unwrap();
        let query = parse_query(&format!("tc({start}, Y)")).unwrap();
        let engine = Engine::default();
        let demand = engine.demand(&program, &edges_db(&edges), &query).unwrap();
        prop_assert!(!demand.is_unrestricted(), "{:?}", demand.fallback_reason());
        let full = engine.run(&program, edges_db(&edges)).unwrap();
        let directed = engine.run_directed(&program, edges_db(&edges), &query).unwrap();
        let kept: Vec<&Tuple> =
            full.facts("tc").iter().filter(|t| demand.keeps("tc", t)).collect();
        let got: Vec<&Tuple> = directed.facts("tc").iter().collect();
        prop_assert_eq!(got, kept, "directed run drifted from the demand projection");
        prop_assert_eq!(
            engine.eval_query(&query, &directed).unwrap(),
            engine.eval_query(&query, &full).unwrap()
        );
    }

    #[test]
    fn all_free_query_rewrites_to_identity(
        edges in proptest::collection::vec((0u8..8, 0u8..8), 1..30)
    ) {
        // a query with no bound arguments demands everything: the rewrite
        // reports the identity fallback and the directed run is
        // byte-identical to the undirected one, every predicate included
        use vada_datalog::parser::parse_query;
        let program = parse_program(TC_PROGRAM).unwrap();
        let query = parse_query("tc(X, Y)").unwrap();
        let engine = Engine::default();
        let demand = engine.demand(&program, &edges_db(&edges), &query).unwrap();
        prop_assert!(demand.is_unrestricted());
        prop_assert!(
            demand.fallback_reason().unwrap().contains("identity"),
            "{:?}", demand.fallback_reason()
        );
        let full = engine.run(&program, edges_db(&edges)).unwrap();
        let directed = engine.run_directed(&program, edges_db(&edges), &query).unwrap();
        let preds: std::collections::BTreeSet<&str> =
            full.predicates().into_iter().chain(directed.predicates()).collect();
        for pred in preds {
            prop_assert_eq!(directed.facts(pred), full.facts(pred), "drift in {}", pred);
        }
    }

    #[test]
    fn aggregate_counts_match_manual_grouping(
        pairs in proptest::collection::vec((0u8..6, 0i64..100), 1..40)
    ) {
        let mut db = Database::new();
        for &(g, v) in &pairs {
            db.insert("item", tuple![g as i64, v]);
        }
        let program = parse_program("cnt(G, count(V)) :- item(G, V).").unwrap();
        let out = Engine::default().run(&program, db.clone()).unwrap();
        // manual set-semantics grouping
        let mut groups: std::collections::BTreeMap<i64, std::collections::BTreeSet<i64>> =
            Default::default();
        for t in db.facts("item") {
            groups.entry(t[0].as_int().unwrap()).or_default().insert(t[1].as_int().unwrap());
        }
        prop_assert_eq!(out.facts("cnt").len(), groups.len());
        for t in out.facts("cnt") {
            let g = t[0].as_int().unwrap();
            prop_assert_eq!(t[1].as_int().unwrap() as usize, groups[&g].len());
        }
    }
}
