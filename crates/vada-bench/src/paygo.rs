//! The pay-as-you-go driver: runs the four demonstration steps (paper §3)
//! and snapshots result quality after each, so experiments can quantify
//! "the more information is provided by the user, the better the outcome".

use std::collections::BTreeMap;

use vada_core::{SchedulingPolicy, Wrangler};
use vada_extract::{score_result, Oracle, ResultQuality, Scenario, ScenarioConfig};
use vada_extract::sources::target_schema;
use vada_kb::{ContextKind, PairwiseStatement};

/// Which steps to run and with what knobs.
#[derive(Debug, Clone)]
pub struct PaygoConfig {
    /// Scenario generation parameters.
    pub scenario: ScenarioConfig,
    /// Run step 2 (data context)?
    pub with_data_context: bool,
    /// Feedback budget for step 3 (0 skips the step).
    pub feedback_budget: usize,
    /// Seed for the oracle's annotation sampling.
    pub feedback_seed: u64,
    /// User-context statements for step 4 (empty skips the step).
    pub user_context: Vec<PairwiseStatement>,
    /// Optional network-transducer policy override.
    pub policy: Option<fn() -> Box<dyn SchedulingPolicy>>,
}

impl Default for PaygoConfig {
    fn default() -> Self {
        PaygoConfig {
            scenario: ScenarioConfig::default(),
            with_data_context: true,
            feedback_budget: 40,
            feedback_seed: 11,
            user_context: paper_user_context(),
            policy: None,
        }
    }
}

/// The paper's Fig 2(d) user context.
pub fn paper_user_context() -> Vec<PairwiseStatement> {
    vec![
        PairwiseStatement {
            more_important: "completeness(crimerank)".into(),
            less_important: "accuracy(property.type)".into(),
            strength: "very strongly".into(),
        },
        PairwiseStatement {
            more_important: "consistency(property)".into(),
            less_important: "completeness(property.bedrooms)".into(),
            strength: "strongly".into(),
        },
        PairwiseStatement {
            more_important: "completeness(property.street)".into(),
            less_important: "completeness(property.postcode)".into(),
            strength: "moderately".into(),
        },
    ]
}

/// Quality + orchestration snapshot after one step.
#[derive(Debug, Clone)]
pub struct StepSnapshot {
    /// Step label (`bootstrap`, `+data context`, ...).
    pub step: String,
    /// Result quality against the ground truth.
    pub quality: ResultQuality,
    /// Transducer executions during this step.
    pub executed: usize,
    /// Names of transducers that ran during this step, in order.
    pub ran: Vec<String>,
    /// The selected mapping at the end of the step.
    pub selected_mapping: Option<String>,
    /// Result rows.
    pub rows: usize,
}

/// The full pay-as-you-go run.
#[derive(Debug)]
pub struct PaygoOutcome {
    /// Snapshots per executed step.
    pub steps: Vec<StepSnapshot>,
    /// The wrangler (for further inspection: trace, KB, result).
    pub wrangler: Wrangler,
    /// The scenario (for ground-truth access).
    pub scenario: Scenario,
}

fn snapshot(
    label: &str,
    w: &Wrangler,
    scenario: &Scenario,
    executed: usize,
    trace_from: usize,
) -> StepSnapshot {
    let result = w.result().expect("every step materialises a result");
    let quality = score_result(&scenario.universe, result);
    let ran = w.trace().entries()[trace_from..]
        .iter()
        .map(|e| e.transducer.clone())
        .collect();
    StepSnapshot {
        step: label.to_string(),
        quality,
        executed,
        ran,
        selected_mapping: w.kb().selected_mapping().map(|s| s.to_string()),
        rows: result.len(),
    }
}

/// Run the pay-as-you-go sequence.
pub fn run_paygo(cfg: &PaygoConfig) -> PaygoOutcome {
    let scenario = Scenario::generate(cfg.scenario.clone());
    let mut w = match cfg.policy {
        Some(make) => Wrangler::with_policy(make()),
        None => Wrangler::new(),
    };

    // --- step 1: automatic bootstrapping -------------------------------
    w.add_source(scenario.rightmove.clone());
    w.add_source(scenario.onthemarket.clone());
    w.add_source(scenario.deprivation.clone());
    w.set_target(target_schema());
    let mut steps = Vec::new();
    let mut mark = w.trace().len();
    let report = w.run().expect("bootstrap orchestration");
    steps.push(snapshot("bootstrap", &w, &scenario, report.executed, mark));

    // --- step 2: data context -------------------------------------------
    if cfg.with_data_context {
        mark = w.trace().len();
        w.add_data_context(
            scenario.address.clone(),
            ContextKind::Reference,
            &[("street", "street"), ("postcode", "postcode")],
        )
        .expect("address context binds to target attrs");
        let report = w.run().expect("data-context orchestration");
        steps.push(snapshot("+data context", &w, &scenario, report.executed, mark));
    }

    // --- step 3: feedback -------------------------------------------------
    if cfg.feedback_budget > 0 {
        mark = w.trace().len();
        let result = w.result().expect("result exists").clone();
        let mut oracle = Oracle::new(&scenario.universe);
        let records = oracle.annotate(&result, cfg.feedback_budget, cfg.feedback_seed);
        w.add_feedback(records);
        let report = w.run().expect("feedback orchestration");
        steps.push(snapshot(
            &format!("+feedback({})", cfg.feedback_budget),
            &w,
            &scenario,
            report.executed,
            mark,
        ));
    }

    // --- step 4: user context ----------------------------------------------
    if !cfg.user_context.is_empty() {
        mark = w.trace().len();
        w.set_user_context(cfg.user_context.clone());
        let report = w.run().expect("user-context orchestration");
        steps.push(snapshot("+user context", &w, &scenario, report.executed, mark));
    }

    PaygoOutcome { steps, wrangler: w, scenario }
}

/// Per-attribute metric rows for a snapshot (attr → (completeness,
/// accuracy)), used by the report renderers.
pub fn attr_table(s: &StepSnapshot) -> BTreeMap<String, (f64, f64)> {
    let mut out = BTreeMap::new();
    for (attr, c) in &s.quality.attr_completeness {
        let a = s.quality.attr_accuracy.get(attr).copied().unwrap_or(0.0);
        out.insert(attr.clone(), (*c, a));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_extract::UniverseConfig;

    fn small() -> PaygoConfig {
        PaygoConfig {
            scenario: ScenarioConfig {
                universe: UniverseConfig { properties: 80, seed: 42 },
                ..Default::default()
            },
            feedback_budget: 60,
            ..Default::default()
        }
    }

    #[test]
    fn paygo_runs_all_four_steps() {
        let outcome = run_paygo(&small());
        assert_eq!(outcome.steps.len(), 4);
        assert_eq!(outcome.steps[0].step, "bootstrap");
        assert!(outcome.steps.iter().all(|s| s.rows > 0));
        // step 2 must involve the context-gated transducers
        assert!(outcome.steps[1].ran.contains(&"cfd_learning".to_string()));
        assert!(outcome.steps[1].ran.contains(&"instance_matching".to_string()));
        // step 3 must involve the feedback transducers
        assert!(outcome.steps[2].ran.contains(&"feedback_repair".to_string()));
    }

    #[test]
    fn quality_is_pay_as_you_go() {
        let outcome = run_paygo(&small());
        let f1: Vec<f64> = outcome.steps.iter().map(|s| s.quality.f1).collect();
        // the headline claim: each step does not hurt, and the journey ends
        // strictly better than the bootstrap
        assert!(
            f1.last().unwrap() > f1.first().unwrap(),
            "f1 sequence {f1:?} should improve overall"
        );
        let precision: Vec<f64> =
            outcome.steps.iter().map(|s| s.quality.precision).collect();
        assert!(
            precision[2] >= precision[1] - 1e-9,
            "feedback must not lower precision: {precision:?}"
        );
    }
}
