//! Data-context impact (paper §2.2 and §3 step 2): vary the *kind* of
//! context (reference vs master vs example) and its coverage, and measure
//! what each buys the wrangle.

use vada_common::Relation;
use vada_core::Wrangler;
use vada_extract::sources::target_schema;
use vada_extract::{score_result, Scenario, ScenarioConfig, UniverseConfig};
use vada_kb::ContextKind;

use crate::report;

fn scenario() -> Scenario {
    Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 150, seed: 42 },
        ..Default::default()
    })
}

/// Take a fraction of a relation's rows (deterministic prefix — coverage
/// of reference data, not a random sample, mirrors "the first N postcodes
/// published").
fn truncate(rel: &Relation, fraction: f64) -> Relation {
    let keep = ((rel.len() as f64) * fraction).round() as usize;
    Relation::from_tuples(
        rel.schema().clone(),
        rel.tuples().iter().take(keep).cloned().collect(),
    )
    .expect("same schema")
}

fn run_with_context(
    s: &Scenario,
    context: Option<(Relation, ContextKind)>,
) -> (f64, f64, usize, usize) {
    let mut w = Wrangler::new();
    w.add_source(s.rightmove.clone());
    w.add_source(s.onthemarket.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap");
    if let Some((rel, kind)) = context {
        w.add_data_context(rel, kind, &[("street", "street"), ("postcode", "postcode")])
            .expect("bindings valid");
        w.run().expect("context step");
    }
    let result = w.result().expect("result");
    let q = score_result(&s.universe, result);
    let cfds = w.kb().cfds().count();
    let instance_matches = w
        .kb()
        .matches()
        .filter(|m| m.matcher == "instance")
        .count();
    (q.precision, q.f1, cfds, instance_matches)
}

/// The sweep: no context, example data, master/reference at varying
/// coverage.
pub fn datacontext_sweep() -> String {
    let s = scenario();
    let mut rows = Vec::new();

    let (p, f1, cfds, im) = run_with_context(&s, None);
    rows.push(vec![
        "none".into(),
        "-".into(),
        format!("{p:.4}"),
        format!("{f1:.4}"),
        cfds.to_string(),
        im.to_string(),
    ]);

    let (p, f1, cfds, im) =
        run_with_context(&s, Some((s.address.clone(), ContextKind::Example)));
    rows.push(vec![
        "example".into(),
        "100%".into(),
        format!("{p:.4}"),
        format!("{f1:.4}"),
        cfds.to_string(),
        im.to_string(),
    ]);

    for coverage in [0.1, 0.3, 0.6, 1.0] {
        let (p, f1, cfds, im) = run_with_context(
            &s,
            Some((truncate(&s.address, coverage), ContextKind::Reference)),
        );
        rows.push(vec![
            "reference".into(),
            format!("{:.0}%", coverage * 100.0),
            format!("{p:.4}"),
            format!("{f1:.4}"),
            cfds.to_string(),
            im.to_string(),
        ]);
    }

    let mut out = String::new();
    out.push_str("=== Data-context impact (paper §2.2, §3 step 2) ===\n\n");
    out.push_str(&report::table(
        &["context kind", "coverage", "precision", "f1", "CFDs learned", "instance matches"],
        &rows,
    ));
    out.push_str(
        "\nexample data licenses instance matching but no CFDs;\n\
         reference data unlocks CFD learning and repair, improving with coverage\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_beats_none_and_example_licenses_no_cfds() {
        let s = Scenario::generate(ScenarioConfig {
            universe: UniverseConfig { properties: 80, seed: 5 },
            ..Default::default()
        });
        let (p_none, _, cfds_none, _) = run_with_context(&s, None);
        let (p_ref, _, cfds_ref, im_ref) =
            run_with_context(&s, Some((s.address.clone(), ContextKind::Reference)));
        let (_, _, cfds_ex, im_ex) =
            run_with_context(&s, Some((truncate(&s.address, 0.5), ContextKind::Example)));
        assert_eq!(cfds_none, 0);
        assert!(cfds_ref > 0, "reference data must teach CFDs");
        assert_eq!(cfds_ex, 0, "example data licenses no CFDs");
        assert!(im_ex > 0, "example data still powers instance matching");
        assert!(im_ref > 0);
        assert!(p_ref >= p_none - 1e-9, "reference context must not hurt: {p_none} -> {p_ref}");
    }
}
