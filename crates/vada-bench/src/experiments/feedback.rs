//! Feedback-volume sweep (paper §3 claim (ii), feedback dimension): more
//! annotations → better results, with diminishing returns.

use vada_extract::{ScenarioConfig, UniverseConfig};

use crate::paygo::{run_paygo, PaygoConfig};
use crate::report;

/// Budgets swept.
pub const BUDGETS: &[usize] = &[0, 20, 40, 80, 160, 320];
/// Seeds averaged.
pub const SEEDS: &[u64] = &[11, 12, 13];

/// Run the sweep and render the series.
pub fn feedback_sweep() -> String {
    let mut rows = Vec::new();
    for &budget in BUDGETS {
        let mut f1 = 0.0;
        let mut precision = 0.0;
        let mut vetoed = 0.0;
        for &seed in SEEDS {
            let cfg = PaygoConfig {
                scenario: ScenarioConfig {
                    universe: UniverseConfig { properties: 150, seed: 42 },
                    ..Default::default()
                },
                feedback_budget: budget,
                feedback_seed: seed,
                user_context: Vec::new(), // isolate the feedback effect
                ..Default::default()
            };
            let outcome = run_paygo(&cfg);
            let last = outcome.steps.last().expect("steps ran");
            f1 += last.quality.f1;
            precision += last.quality.precision;
            vetoed += outcome.wrangler.kb().vetoes().len() as f64;
        }
        let n = SEEDS.len() as f64;
        rows.push(vec![
            budget.to_string(),
            format!("{:.4}", precision / n),
            format!("{:.4}", f1 / n),
            format!("{:.1}", vetoed / n),
        ]);
    }
    let mut out = String::new();
    out.push_str("=== Feedback sweep (paper §3 claim (ii)) ===\n");
    out.push_str(&format!("{} seeds averaged; user context disabled to isolate feedback\n\n", SEEDS.len()));
    out.push_str(&report::table(
        &["feedback budget", "precision", "f1", "vetoes recorded"],
        &rows,
    ));
    // monotonicity note
    let first: f64 = rows.first().expect("rows")[1].parse().expect("number");
    let last: f64 = rows.last().expect("rows")[1].parse().expect("number");
    out.push_str(&format!(
        "\nprecision {first:.4} (no feedback) -> {last:.4} (budget {}): {}\n",
        BUDGETS.last().expect("budgets"),
        if last >= first { "monotone improvement" } else { "REGRESSION" }
    ));
    out
}

#[cfg(test)]
mod tests {
    use vada_extract::{ScenarioConfig, UniverseConfig};

    use crate::paygo::{run_paygo, PaygoConfig};

    /// The sweep's core property on a small instance: feedback at a larger
    /// budget never hurts precision.
    #[test]
    fn more_feedback_does_not_hurt_precision() {
        let run = |budget: usize| {
            let cfg = PaygoConfig {
                scenario: ScenarioConfig {
                    universe: UniverseConfig { properties: 60, seed: 9 },
                    ..Default::default()
                },
                feedback_budget: budget,
                user_context: Vec::new(),
                ..Default::default()
            };
            run_paygo(&cfg).steps.last().expect("steps").quality.precision
        };
        let none = run(0);
        let lots = run(200);
        assert!(lots >= none - 1e-9, "precision {none} -> {lots}");
    }
}
