//! One module per experiment in DESIGN.md §4. Every function returns the
//! report text it prints, so integration tests can assert on content.

pub mod context;
pub mod datacontext;
pub mod feedback;
pub mod figures;
pub mod incremental;
pub mod matchers;
pub mod orchestration;
pub mod repair_cfd;

/// All experiment ids, in DESIGN.md order (`bench` additionally writes
/// the machine-readable `BENCH_baseline.json`).
pub const ALL: &[&str] = &[
    "table1",
    "fig2",
    "fig3",
    "paygo",
    "feedback",
    "context",
    "orchestration",
    "datacontext",
    "matchers",
    "cfd",
    "bench",
];

/// Run one experiment by id and return its report text.
pub fn run(id: &str) -> Option<String> {
    Some(match id {
        "table1" => figures::table1(),
        "fig2" => figures::fig2(),
        "fig3" => figures::fig3(),
        "paygo" => figures::paygo_experiment(),
        "feedback" => feedback::feedback_sweep(),
        "context" => context::context_comparison(),
        "orchestration" => orchestration::orchestration_dynamics(),
        "datacontext" => datacontext::datacontext_sweep(),
        "matchers" => matchers::matcher_ablation(),
        "cfd" => repair_cfd::cfd_and_repair(),
        "bench" => incremental::incremental_baseline(),
        _ => return None,
    })
}
