//! Matcher ablation: schema-only vs schema+instance matching, scored
//! against the known ground-truth correspondences of the scenario.
//! Motivates Table 1's split of the Matching activity into two transducers
//! with different input dependencies.

use std::collections::BTreeSet;

use vada_extract::sources::{source_attrs, target_schema};
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_match::{
    combine, instance_match, schema_match, CombineConfig, ContextColumn, Correspondence,
    InstanceMatchConfig, SchemaMatchConfig,
};

use crate::report;

/// Ground-truth correspondences for a source given its attribute list in
/// canonical column order (price, street, postcode, bedrooms, type,
/// description).
fn truth_for(source: &str, attrs: &[&str]) -> BTreeSet<(String, String, String)> {
    let targets = ["price", "street", "postcode", "bedrooms", "type", "description"];
    attrs
        .iter()
        .zip(targets)
        .map(|(a, t)| (source.to_string(), a.to_string(), t.to_string()))
        .collect()
}

/// Precision/recall of a correspondence set against the truth, counting
/// only each source attribute's *best* match (what mapping generation
/// consumes).
fn score(
    corrs: &[Correspondence],
    truth: &BTreeSet<(String, String, String)>,
) -> (f64, f64) {
    let mut best: std::collections::BTreeMap<(String, String), &Correspondence> =
        Default::default();
    for c in corrs {
        let key = (c.src_rel.clone(), c.src_attr.clone());
        match best.get(&key) {
            Some(prev) if prev.score >= c.score => {}
            _ => {
                best.insert(key, c);
            }
        }
    }
    if best.is_empty() {
        return (0.0, 0.0);
    }
    let hits = best
        .values()
        .filter(|c| truth.contains(&(c.src_rel.clone(), c.src_attr.clone(), c.tgt_attr.clone())))
        .count();
    let precision = hits as f64 / best.len() as f64;
    let recall = hits as f64 / truth.len() as f64;
    (precision, recall)
}

/// Run the ablation on the varied-name source.
pub fn matcher_ablation() -> String {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 150, seed: 42 },
        ..Default::default()
    });
    let (_, otm_attrs) = source_attrs(true);
    let truth = truth_for("onthemarket", &otm_attrs);
    let tgt = target_schema();

    let schema_corrs = schema_match(&SchemaMatchConfig::default(), s.onthemarket.schema(), &tgt);

    let columns = vec![
        ContextColumn::from_relation(&s.address, "street", "street"),
        ContextColumn::from_relation(&s.address, "postcode", "postcode"),
    ];
    let instance_corrs =
        instance_match(&InstanceMatchConfig::default(), &s.onthemarket, &columns);
    let combined = combine(&CombineConfig::default(), &schema_corrs, &instance_corrs);

    let mut rows = Vec::new();
    for (label, corrs) in [
        ("schema only", &schema_corrs),
        ("instance only", &instance_corrs),
        ("combined", &combined),
    ] {
        let (p, r) = score(corrs, &truth);
        rows.push(vec![
            label.to_string(),
            corrs.len().to_string(),
            format!("{p:.3}"),
            format!("{r:.3}"),
        ]);
    }

    let mut out = String::new();
    out.push_str("=== Matcher ablation (Table 1's two matching transducers) ===\n\n");
    out.push_str(&report::table(
        &["matcher", "correspondences", "precision of best-per-attr", "recall"],
        &rows,
    ));
    out.push_str(
        "\ninstance evidence covers only context-bound attributes (street, postcode)\n\
         but corroborates or corrects the name-based matches where it applies;\n\
         schema evidence is broad but relies on names and the synonym lexicon\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combined_is_at_least_as_good_as_schema_only() {
        let s = Scenario::generate(ScenarioConfig {
            universe: UniverseConfig { properties: 80, seed: 2 },
            ..Default::default()
        });
        let (_, otm_attrs) = source_attrs(true);
        let truth = truth_for("onthemarket", &otm_attrs);
        let tgt = target_schema();
        let schema_corrs =
            schema_match(&SchemaMatchConfig::default(), s.onthemarket.schema(), &tgt);
        let columns = vec![
            ContextColumn::from_relation(&s.address, "street", "street"),
            ContextColumn::from_relation(&s.address, "postcode", "postcode"),
        ];
        let instance_corrs =
            instance_match(&InstanceMatchConfig::default(), &s.onthemarket, &columns);
        let combined = combine(&CombineConfig::default(), &schema_corrs, &instance_corrs);
        let (p_schema, _) = score(&schema_corrs, &truth);
        let (p_combined, _) = score(&combined, &truth);
        assert!(p_combined >= p_schema - 1e-9, "{p_schema} -> {p_combined}");
    }

    #[test]
    fn report_renders() {
        let r = matcher_ablation();
        assert!(r.contains("schema only"));
        assert!(r.contains("combined"));
    }
}
