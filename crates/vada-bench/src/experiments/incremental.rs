//! The incremental-evaluation baseline: quantify full vs delta
//! re-derivation and persist the numbers as machine-readable JSON
//! (`BENCH_baseline.json`) so the performance trajectory accumulates
//! across PRs instead of living only in terminal scrollback.

use std::collections::BTreeMap;
use std::time::Instant;

use vada_common::obs::{json_escape, Obs};
use vada_common::{tuple, Parallelism, Relation, Schema, Sharding, Tuple, Value};
use vada_datalog::incremental::{DeltaMode, IncrementalSession};
use vada_datalog::{parse_program, Database, Engine, EngineConfig};
use vada_fusion::{block_by_keys_sharded, block_by_keys_with};

use crate::report::table;

/// Median of raw wall-clock samples.
fn median_ms(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Median wall-clock of re-deriving `input` from scratch `rounds` times,
/// plus the derivation count — the full-path half of both baselines.
fn time_full_runs(input: &Database, rounds: usize, obs: &Obs) -> (f64, usize) {
    let program = parse_program(PROGRAM).unwrap();
    let engine = Engine::new(EngineConfig { obs: obs.clone(), ..Default::default() });
    let input_facts = input.total_facts();
    let mut times = Vec::new();
    let mut derivations = 0usize;
    for _ in 0..rounds {
        let db = input.clone();
        let start = Instant::now();
        let out = engine.run(&program, db).expect("full run evaluates");
        times.push(start.elapsed().as_secs_f64() * 1e3);
        derivations = out.total_facts() - input_facts;
    }
    (median_ms(times), derivations)
}

/// Where the machine-readable baseline lands (repo root when the driver
/// runs from there; always printed in the report).
pub const BASELINE_PATH: &str = "BENCH_baseline.json";

const PROGRAM: &str = r#"
    all(X, P) :- a(X, P).
    all(X, P) :- b(X, P).
    picked(X, P) :- a(X, P), k(X).
    wide(X, P, Q) :- picked(X, P), w(P, Q).
"#;

fn base_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n as i64 {
        db.insert("a", tuple![i % 997, i]);
        db.insert("b", tuple![i % 631, i + 10_000_000]);
        if i % 3 == 0 {
            db.insert("k", tuple![i % 997]);
        }
        db.insert("w", tuple![i, i * 2]);
    }
    db
}

fn delta(k: usize, round: usize) -> Vec<(String, Tuple)> {
    (0..k as i64)
        .map(|j| {
            let v = 20_000_000 + (round as i64) * k as i64 + j;
            ("a".to_string(), tuple![v % 997, v])
        })
        .collect()
}

struct Row {
    base_rows: usize,
    delta_rows: usize,
    full_ms: f64,
    incremental_ms: f64,
    full_derivations: usize,
    incremental_derivations: usize,
}

struct RetractRow {
    base_rows: usize,
    removed_rows: usize,
    full_ms: f64,
    incremental_ms: f64,
    full_derivations: usize,
    incremental_work: usize,
}

struct ScanRow {
    rows: usize,
    shards: usize,
    monolithic_ms: f64,
    sharded_ms: f64,
}

struct RecoveryRow {
    rows: usize,
    edit_events: usize,
    wal_bytes: u64,
    reopen_ms: f64,
    reingest_ms: f64,
}

struct MagicRow {
    base_rows: usize,
    full_ms: f64,
    directed_ms: f64,
    full_derivations: usize,
    directed_derivations: usize,
}

struct CacheRow {
    base_rows: usize,
    delta_rows: usize,
    cold_ms: f64,
    warm_ms: f64,
    delta_ms: f64,
}

/// Transitive closure over disconnected blocks: a bound-argument query
/// only needs its own block, the full fixpoint derives every block.
const MAGIC_PROGRAM: &str = "tc(X, Y) :- e(X, Y). tc(X, Z) :- tc(X, Y), e(Y, Z).";

/// `n` edge rows forming chains of `block` nodes (block boundaries carry
/// a self-loop so the row count stays exactly `n`).
fn magic_base(n: usize, block: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n as i64 {
        if (i + 1) % block as i64 != 0 {
            db.insert("e", tuple![i, i + 1]);
        } else {
            db.insert("e", tuple![i, i]);
        }
    }
    db
}

/// A bound-argument query (`tc(start, Y)`) answered by the demand-driven
/// path vs the full fixpoint. Answers are asserted identical (the
/// byte-identity guarantee), so the derivation-count gap is the pure
/// benefit of demand: the directed run derives one chain, the full run
/// derives all of them.
fn measure_magic(n: usize, block: usize, rounds: usize, obs: &Obs) -> MagicRow {
    use vada_datalog::parser::parse_query;
    let program = parse_program(MAGIC_PROGRAM).unwrap();
    let start_node = 3 * block as i64; // a block start well inside the base
    let query = parse_query(&format!("tc({start_node}, Y)")).unwrap();
    let engine = Engine::new(EngineConfig { obs: obs.clone(), ..Default::default() });
    let input = magic_base(n, block);
    let input_facts = input.total_facts();

    let mut full_times = Vec::new();
    let mut full_derivations = 0usize;
    let mut full_answers = Vec::new();
    for _ in 0..rounds {
        let db = input.clone();
        let start = Instant::now();
        let out = engine.run(&program, db).expect("full run evaluates");
        full_times.push(start.elapsed().as_secs_f64() * 1e3);
        full_derivations = out.total_facts() - input_facts;
        full_answers = engine.eval_query(&query, &out).expect("query evaluates");
    }

    let mut directed_times = Vec::new();
    let mut directed_derivations = 0usize;
    for _ in 0..rounds {
        let db = input.clone();
        let start = Instant::now();
        let out = engine
            .run_directed(&program, db, &query)
            .expect("directed run evaluates");
        directed_times.push(start.elapsed().as_secs_f64() * 1e3);
        directed_derivations = out.total_facts() - input_facts;
        let answers = engine.eval_query(&query, &out).expect("query evaluates");
        assert_eq!(answers, full_answers, "directed answers must be byte-identical");
    }

    assert!(
        directed_derivations * 10 <= full_derivations,
        "demand must cut derivations >= 10x: {directed_derivations} vs {full_derivations}"
    );
    MagicRow {
        base_rows: n,
        full_ms: median_ms(full_times),
        directed_ms: median_ms(directed_times),
        full_derivations,
        directed_derivations,
    }
}

/// A repeated bound-pattern query served through the persistent
/// [`vada_datalog::QueryCache`]: the cold call pays the demanded build,
/// the warm repeat is a pure lookup — the counters prove zero stratum
/// passes and zero `datalog/index_build` work — and a k-row edit
/// maintains the cached view O(change) instead of rebuilding it.
fn measure_query_cache(n: usize, k: usize, rounds: usize, obs: &Obs) -> CacheRow {
    use vada_common::obs::key as obs_key;
    use vada_datalog::{CacheDelta, DeltaBatch, QueryCache};
    let cfg = EngineConfig { obs: obs.clone(), ..Default::default() };
    let qsrc = "picked(3, P)";

    // cold: a fresh cache per round pays the full demanded build
    let mut cold_times = Vec::new();
    for _ in 0..rounds {
        let mut cache = QueryCache::new(cfg.clone());
        let start = Instant::now();
        let answers = cache
            .query(PROGRAM, qsrc, 1, 1, CacheDelta::Unchanged, || Ok(base_db(n)))
            .expect("cold query evaluates");
        cold_times.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(!answers.is_empty(), "the bound query must have answers");
    }

    // warm: repeats on an unchanged base must serve the cached view with
    // no evaluation work at all
    let mut cache = QueryCache::new(cfg.clone());
    let cold_answers = cache
        .query(PROGRAM, qsrc, 1, 1, CacheDelta::Unchanged, || Ok(base_db(n)))
        .expect("cold query evaluates");
    let passes = obs.get(obs_key::STRATUM_PASSES);
    let builds = obs.get(obs_key::INDEX_BUILDS);
    let mut warm_times = Vec::new();
    for _ in 0..rounds {
        let start = Instant::now();
        let warm = cache
            .query(PROGRAM, qsrc, 1, 1, CacheDelta::Unchanged, || Ok(base_db(n)))
            .expect("warm query evaluates");
        warm_times.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(warm, cold_answers, "warm answers must be byte-identical");
    }
    assert_eq!(obs.get(obs_key::STRATUM_PASSES), passes, "a warm hit must not derive");
    assert_eq!(obs.get(obs_key::INDEX_BUILDS), builds, "a warm hit must not re-index");

    // delta: a k-row edit maintains the view through the session's fast
    // path (the build closure must never run)
    let mut delta_times = Vec::new();
    for round in 0..rounds {
        let facts = delta(k, round);
        let version = 2 + round as u64;
        let start = Instant::now();
        cache
            .query(
                PROGRAM,
                qsrc,
                1,
                version,
                CacheDelta::Rows(vec![DeltaBatch::Append(facts)]),
                || unreachable!("a row delta must maintain the view, not rebuild it"),
            )
            .expect("delta query evaluates");
        delta_times.push(start.elapsed().as_secs_f64() * 1e3);
    }

    CacheRow {
        base_rows: n,
        delta_rows: k,
        cold_ms: median_ms(cold_times),
        warm_ms: median_ms(warm_times),
        delta_ms: median_ms(delta_times),
    }
}

/// Crash recovery of a durable knowledge base: reopening (snapshot +
/// WAL replay) vs re-ingesting the same history into a fresh in-memory
/// base (the producer-side cost a crash would otherwise force, *before*
/// re-running extraction). The reopened base is asserted to land on the
/// same version as the original, so the timing compares equal states.
fn measure_wal_recovery(n: usize, edits: usize, rounds: usize, obs: &Obs) -> RecoveryRow {
    use vada_kb::KnowledgeBase;
    let dir = std::env::temp_dir().join(format!(
        "vada-bench-recovery-{}-{n}-{edits}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let mut rel = Relation::empty(Schema::all_str("listings", &["street", "price", "postcode"]));
    for i in 0..n {
        rel.push(tuple![
            format!("{} high st", i / 3),
            format!("{}", 100_000 + i * 7),
            format!("M{} {}AA", i % 97, i % 5)
        ])
        .expect("arity 3");
    }
    let edit_row = |e: usize| {
        (
            e % n,
            tuple![format!("{} rewritten", e), format!("{}", 200_000 + e), "M1 1AA"],
        )
    };

    let mut kb = KnowledgeBase::new();
    // route the KB's wal.* tallies AND its wal/append / wal/compact spans
    // straight into the experiment's registry (a post-hoc counter merge
    // would drop the span records)
    kb.set_obs(obs.clone());
    kb.persist_to(&dir).expect("durable dir initialises");
    kb.register_source(rel.clone());
    for e in 0..edits {
        kb.update_source("listings", &[edit_row(e)]).expect("edit applies");
    }
    kb.storage_health().expect("log stays healthy");
    let version = kb.version();
    drop(kb);
    let wal_bytes = std::fs::metadata(dir.join("wal.log")).expect("log exists").len();

    let mut reopen_times = Vec::new();
    for _ in 0..rounds {
        let start = Instant::now();
        let recovered = KnowledgeBase::open(&dir).expect("recovery succeeds");
        reopen_times.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(recovered.version(), version, "recovery must land on the crash state");
    }

    let mut reingest_times = Vec::new();
    for _ in 0..rounds {
        let fresh = rel.clone(); // the producer's relation is a given; time only the KB work
        let start = Instant::now();
        let mut kb = KnowledgeBase::new();
        kb.register_source(fresh);
        for e in 0..edits {
            kb.update_source("listings", &[edit_row(e)]).expect("edit applies");
        }
        reingest_times.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(kb.version(), version, "re-ingest must reproduce the same history");
    }
    let _ = std::fs::remove_dir_all(&dir);

    RecoveryRow {
        rows: n,
        edit_events: edits,
        wal_bytes,
        reopen_ms: median_ms(reopen_times),
        reingest_ms: median_ms(reingest_times),
    }
}

/// The same blocking scan, monolithic vs one scheduling unit per shard —
/// outputs are asserted byte-identical, so the timing difference is pure
/// scheduling. Both legs run under the ambient `VADA_THREADS` level (the
/// `workers` field of the baseline records it): on one worker the sharded
/// path pays partitioning overhead; with workers, shards become parallel
/// scan units.
fn measure_sharded_scan(n: usize, shards: usize, rounds: usize) -> ScanRow {
    let mut rel = Relation::empty(Schema::all_str("listings", &["street", "price", "postcode"]));
    for i in 0..n {
        let postcode = if i % 29 == 0 {
            Value::Null
        } else {
            Value::str(format!("M{} {}AA", i % 97, i % 5))
        };
        rel.push(Tuple::new(vec![
            Value::str(format!("{} high st", i / 3)),
            Value::str(format!("{}", 100_000 + i * 7)),
            postcode,
        ]))
        .expect("arity 3");
    }
    let par = Parallelism::from_env();
    let mut mono_times = Vec::new();
    let mut shard_times = Vec::new();
    for _ in 0..rounds {
        let start = Instant::now();
        let mono = block_by_keys_with(&rel, &["postcode"], par).expect("scan succeeds");
        mono_times.push(start.elapsed().as_secs_f64() * 1e3);
        let start = Instant::now();
        let sharded =
            block_by_keys_sharded(&rel, &["postcode"], Sharding::Shards(shards), par)
                .expect("sharded scan succeeds");
        shard_times.push(start.elapsed().as_secs_f64() * 1e3);
        assert_eq!(sharded, mono, "sharded scan must be byte-identical");
    }
    ScanRow {
        rows: n,
        shards,
        monolithic_ms: median_ms(mono_times),
        sharded_ms: median_ms(shard_times),
    }
}

/// The `a` facts of rounds `round*k..(round+1)*k` — disjoint per round, so
/// repeated retraction rounds always remove rows that are still present.
fn base_rows_of(k: usize, round: usize) -> Vec<(String, Tuple)> {
    (0..k as i64)
        .map(|j| {
            let i = (round as i64) * k as i64 + j;
            ("a".to_string(), tuple![i % 997, i])
        })
        .collect()
}

/// A `k`-row retraction against an `n`-row base: the full path re-derives
/// the shrunk base from scratch, the incremental session's counting path
/// retracts O(k) facts. The derivation-count asymmetry is the headline
/// O(change) claim for deletions.
fn measure_retraction(n: usize, k: usize, rounds: usize, obs: &Obs) -> RetractRow {
    // full: median wall-clock of re-deriving base-minus-k from scratch
    let mut shrunk = Database::new();
    let gone: std::collections::HashSet<Tuple> =
        base_rows_of(k, 0).into_iter().map(|(_, t)| t).collect();
    {
        let full = base_db(n);
        for pred in full.predicates() {
            for t in full.facts(pred) {
                if pred == "a" && gone.contains(t) {
                    continue;
                }
                shrunk.insert(pred, t.clone());
            }
        }
    }
    let (full_ms, full_derivations) = time_full_runs(&shrunk, rounds, obs);

    // incremental: median wall-clock of one k-row retraction (each round
    // removes a distinct slice of the base)
    let mut session =
        IncrementalSession::new(EngineConfig { obs: obs.clone(), ..Default::default() }, PROGRAM)
            .unwrap();
    session.run_full(base_db(n)).unwrap();
    let mut inc_times = Vec::new();
    let mut inc_work = 0usize;
    for round in 0..rounds {
        let removals = base_rows_of(k, round);
        let start = Instant::now();
        session.retract(removals).expect("retraction applies");
        inc_times.push(start.elapsed().as_secs_f64() * 1e3);
        let outcome = session.last_outcome().expect("retract records an outcome");
        assert_eq!(
            outcome.mode,
            DeltaMode::Incremental,
            "retraction baseline must hit the counting path: {outcome:?}"
        );
        // guard against drift between base_rows_of and base_db turning the
        // measurement into a no-op
        assert_eq!(outcome.removed_facts, k, "every removal must hit a live base row");
        assert!(outcome.retracted_facts > 0, "retraction must cascade: {outcome:?}");
        inc_work = outcome.retracted_facts + outcome.rederived_facts;
    }

    RetractRow {
        base_rows: n,
        removed_rows: k,
        full_ms,
        incremental_ms: median_ms(inc_times),
        full_derivations,
        incremental_work: inc_work,
    }
}

fn measure(n: usize, k: usize, rounds: usize, obs: &Obs) -> Row {
    // full: median wall-clock of re-deriving base+delta from scratch
    let mut grown = base_db(n);
    for (p, t) in delta(k, 0) {
        grown.insert(&p, t);
    }
    let (full_ms, full_derivations) = time_full_runs(&grown, rounds, obs);

    // incremental: median wall-clock of one k-fact delta apply
    let mut session =
        IncrementalSession::new(EngineConfig { obs: obs.clone(), ..Default::default() }, PROGRAM)
            .unwrap();
    session.run_full(base_db(n)).unwrap();
    session.apply(delta(k, 0)).unwrap();
    let mut inc_times = Vec::new();
    let mut inc_derivations = 0usize;
    for round in 1..=rounds {
        let facts = delta(k, round);
        let start = Instant::now();
        session.apply(facts).expect("delta applies");
        inc_times.push(start.elapsed().as_secs_f64() * 1e3);
        let outcome = session.last_outcome().expect("apply records an outcome");
        assert_eq!(outcome.mode, DeltaMode::Incremental, "baseline must hit the fast path");
        assert_eq!(outcome.delta_facts, k, "every delta row must be genuinely new");
        inc_derivations = outcome.derived_facts;
    }

    Row {
        base_rows: n,
        delta_rows: k,
        full_ms,
        incremental_ms: median_ms(inc_times),
        full_derivations,
        incremental_derivations: inc_derivations,
    }
}

/// Canonical span-tree rendering for one experiment family, fit for exact
/// comparison across runs: the `bytes` attribute is redacted because byte
/// magnitudes are environment-sensitive (they get a tolerance band in the
/// *counter* channel as `wal.bytes`, not exactness in the span channel).
fn family_shapes(obs: &Obs) -> Vec<String> {
    let records: Vec<_> = obs
        .span_records()
        .into_iter()
        .map(|mut r| {
            r.attrs.retain(|(k, _)| k != "bytes");
            r
        })
        .collect();
    vada_common::obs::span_shape(&records)
}

/// Everything one measurement pass produces: the timing rows feeding the
/// human-readable report, plus the structural channels (counters and span
/// shapes) that `BENCH_baseline.json` pins and `--check` diffs.
pub(crate) struct Families {
    rows: Vec<Row>,
    retractions: Vec<RetractRow>,
    scans: Vec<ScanRow>,
    recoveries: Vec<RecoveryRow>,
    magics: Vec<MagicRow>,
    caches: Vec<CacheRow>,
    pub(crate) counters: Vec<(&'static str, BTreeMap<String, u64>)>,
    pub(crate) span_shapes: Vec<(&'static str, Vec<String>)>,
}

/// Run every experiment family once, each against its own registry, so the
/// structural snapshots attribute tallies and span trees to the family
/// that produced them. Shared by the baseline writer and `--check`.
pub(crate) fn measure_families() -> Families {
    let inc_obs = Obs::enabled();
    let ret_obs = Obs::enabled();
    let rec_obs = Obs::enabled();
    let magic_obs = Obs::enabled();
    let cache_obs = Obs::enabled();
    let rows = vec![
        measure(5_000, 64, 5, &inc_obs),
        measure(20_000, 64, 5, &inc_obs),
    ];
    let retractions = vec![
        measure_retraction(5_000, 64, 5, &ret_obs),
        measure_retraction(20_000, 64, 5, &ret_obs),
    ];
    let scans = vec![
        measure_sharded_scan(10_000, 4, 5),
        measure_sharded_scan(40_000, 4, 5),
    ];
    let recoveries = vec![
        measure_wal_recovery(5_000, 128, 5, &rec_obs),
        measure_wal_recovery(20_000, 128, 5, &rec_obs),
    ];
    let magics = vec![measure_magic(20_000, 50, 5, &magic_obs)];
    let caches = vec![measure_query_cache(20_000, 64, 5, &cache_obs)];
    let counters = vec![
        ("datalog_incremental_vs_full", inc_obs.counters()),
        ("datalog_retraction_vs_full", ret_obs.counters()),
        ("kb_wal_recovery", rec_obs.counters()),
        ("datalog_magic_vs_full", magic_obs.counters()),
        ("datalog_query_cache", cache_obs.counters()),
    ];
    let span_shapes = vec![
        ("datalog_incremental_vs_full", family_shapes(&inc_obs)),
        ("datalog_retraction_vs_full", family_shapes(&ret_obs)),
        ("kb_wal_recovery", family_shapes(&rec_obs)),
        ("datalog_magic_vs_full", family_shapes(&magic_obs)),
        ("datalog_query_cache", family_shapes(&cache_obs)),
    ];
    Families { rows, retractions, scans, recoveries, magics, caches, counters, span_shapes }
}

fn to_json(
    rows: &[Row],
    retractions: &[RetractRow],
    scans: &[ScanRow],
    recoveries: &[RecoveryRow],
    magics: &[MagicRow],
    caches: &[CacheRow],
    counters: &[(&str, BTreeMap<String, u64>)],
    span_shapes: &[(&str, Vec<String>)],
) -> String {
    let workers = vada_common::Parallelism::from_env().workers();
    let mut out = String::from("{\n  \"schema\": \"vada-bench-baseline/v8\",\n");
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"datalog_incremental_vs_full\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"base_rows\": {}, \"delta_rows\": {}, \"full_ms\": {:.3}, \
             \"incremental_ms\": {:.3}, \"full_derivations\": {}, \
             \"incremental_derivations\": {}, \"speedup\": {:.1}}}{}\n",
            r.base_rows,
            r.delta_rows,
            r.full_ms,
            r.incremental_ms,
            r.full_derivations,
            r.incremental_derivations,
            r.full_ms / r.incremental_ms.max(1e-9),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"datalog_retraction_vs_full\": [\n");
    for (i, r) in retractions.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"base_rows\": {}, \"removed_rows\": {}, \"full_ms\": {:.3}, \
             \"incremental_ms\": {:.3}, \"full_derivations\": {}, \
             \"incremental_work\": {}, \"speedup\": {:.1}}}{}\n",
            r.base_rows,
            r.removed_rows,
            r.full_ms,
            r.incremental_ms,
            r.full_derivations,
            r.incremental_work,
            r.full_ms / r.incremental_ms.max(1e-9),
            if i + 1 == retractions.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"kb_sharded_scan\": [\n");
    for (i, r) in scans.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"shards\": {}, \"monolithic_ms\": {:.3}, \
             \"sharded_ms\": {:.3}, \"speedup\": {:.2}}}{}\n",
            r.rows,
            r.shards,
            r.monolithic_ms,
            r.sharded_ms,
            r.monolithic_ms / r.sharded_ms.max(1e-9),
            if i + 1 == scans.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"kb_wal_recovery\": [\n");
    for (i, r) in recoveries.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rows\": {}, \"edit_events\": {}, \"wal_bytes\": {}, \
             \"reopen_ms\": {:.3}, \"reingest_ms\": {:.3}, \"reopen_overhead\": {:.2}}}{}\n",
            r.rows,
            r.edit_events,
            r.wal_bytes,
            r.reopen_ms,
            r.reingest_ms,
            r.reopen_ms / r.reingest_ms.max(1e-9),
            if i + 1 == recoveries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"datalog_magic_vs_full\": [\n");
    for (i, r) in magics.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"base_rows\": {}, \"full_ms\": {:.3}, \"directed_ms\": {:.3}, \
             \"full_derivations\": {}, \"directed_derivations\": {}, \
             \"derivation_ratio\": {:.1}, \"speedup\": {:.1}}}{}\n",
            r.base_rows,
            r.full_ms,
            r.directed_ms,
            r.full_derivations,
            r.directed_derivations,
            r.full_derivations as f64 / (r.directed_derivations as f64).max(1.0),
            r.full_ms / r.directed_ms.max(1e-9),
            if i + 1 == magics.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"datalog_query_cache\": [\n");
    for (i, r) in caches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"base_rows\": {}, \"delta_rows\": {}, \"cold_ms\": {:.3}, \
             \"warm_ms\": {:.3}, \"delta_ms\": {:.3}, \"warm_speedup\": {:.1}}}{}\n",
            r.base_rows,
            r.delta_rows,
            r.cold_ms,
            r.warm_ms,
            r.delta_ms,
            r.cold_ms / r.warm_ms.max(1e-9),
            if i + 1 == caches.len() { "" } else { "," }
        ));
    }
    // per-experiment observability snapshots: what the substrate tallied
    // while the family above was measured (schema v7)
    out.push_str("  ],\n  \"counters\": {\n");
    for (i, (family, snapshot)) in counters.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{", json_escape(family)));
        for (j, (name, v)) in snapshot.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {v}", json_escape(name)));
        }
        out.push_str(if i + 1 == counters.len() { "}\n" } else { "},\n" });
    }
    // per-experiment span trees in the canonical shape rendering (schema
    // v8): names, parent edges and structural attrs — durations are
    // quarantined in the timing channel and never land here
    out.push_str("  },\n  \"span_shapes\": {\n");
    for (i, (family, lines)) in span_shapes.iter().enumerate() {
        out.push_str(&format!("    \"{}\": [", json_escape(family)));
        for (j, line) in lines.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\"", json_escape(line)));
        }
        out.push_str(if i + 1 == span_shapes.len() { "]\n" } else { "],\n" });
    }
    out.push_str("  }\n}\n");
    out
}

/// Run the baseline measurements, write `BENCH_baseline.json`, and return
/// the human-readable report.
pub fn incremental_baseline() -> String {
    let fam = measure_families();
    let Families { rows, retractions, scans, recoveries, magics, caches, counters, span_shapes } =
        fam;
    let json = to_json(
        &rows,
        &retractions,
        &scans,
        &recoveries,
        &magics,
        &caches,
        &counters,
        &span_shapes,
    );
    let write_note = match std::fs::write(BASELINE_PATH, &json) {
        Ok(()) => format!("baseline written to {BASELINE_PATH}"),
        Err(e) => format!("could not write {BASELINE_PATH}: {e}"),
    };
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.base_rows.to_string(),
                r.delta_rows.to_string(),
                format!("{:.2}", r.full_ms),
                format!("{:.2}", r.incremental_ms),
                r.full_derivations.to_string(),
                r.incremental_derivations.to_string(),
                format!("{:.0}x", r.full_ms / r.incremental_ms.max(1e-9)),
            ]
        })
        .collect();
    let retract_rows: Vec<Vec<String>> = retractions
        .iter()
        .map(|r| {
            vec![
                r.base_rows.to_string(),
                r.removed_rows.to_string(),
                format!("{:.2}", r.full_ms),
                format!("{:.2}", r.incremental_ms),
                r.full_derivations.to_string(),
                r.incremental_work.to_string(),
                format!("{:.0}x", r.full_ms / r.incremental_ms.max(1e-9)),
            ]
        })
        .collect();
    let scan_rows: Vec<Vec<String>> = scans
        .iter()
        .map(|r| {
            vec![
                r.rows.to_string(),
                r.shards.to_string(),
                format!("{:.2}", r.monolithic_ms),
                format!("{:.2}", r.sharded_ms),
                format!("{:.2}x", r.monolithic_ms / r.sharded_ms.max(1e-9)),
            ]
        })
        .collect();
    let magic_rows: Vec<Vec<String>> = magics
        .iter()
        .map(|r| {
            vec![
                r.base_rows.to_string(),
                format!("{:.2}", r.full_ms),
                format!("{:.2}", r.directed_ms),
                r.full_derivations.to_string(),
                r.directed_derivations.to_string(),
                format!(
                    "{:.0}x",
                    r.full_derivations as f64 / (r.directed_derivations as f64).max(1.0)
                ),
            ]
        })
        .collect();
    let cache_rows: Vec<Vec<String>> = caches
        .iter()
        .map(|r| {
            vec![
                r.base_rows.to_string(),
                r.delta_rows.to_string(),
                format!("{:.2}", r.cold_ms),
                format!("{:.3}", r.warm_ms),
                format!("{:.2}", r.delta_ms),
                format!("{:.0}x", r.cold_ms / r.warm_ms.max(1e-9)),
            ]
        })
        .collect();
    let recovery_rows: Vec<Vec<String>> = recoveries
        .iter()
        .map(|r| {
            vec![
                r.rows.to_string(),
                r.edit_events.to_string(),
                format!("{:.1} KiB", r.wal_bytes as f64 / 1024.0),
                format!("{:.2}", r.reopen_ms),
                format!("{:.2}", r.reingest_ms),
                format!("{:.1}x", r.reopen_ms / r.reingest_ms.max(1e-9)),
            ]
        })
        .collect();
    format!(
        "== Incremental delta evaluation vs full re-derivation ==\n\
         A k-row delta against an N-row base: the full path re-derives\n\
         everything, the incremental session re-derives O(k).\n\n{}\n\n\
         == Retraction (counting/DRed) vs full re-derivation ==\n\
         A k-row retraction against an N-row base: the full path re-derives\n\
         the shrunk base from scratch, the counting path touches O(k) facts.\n\n{}\n\n\
         == Sharded vs monolithic scan (blocking over N rows) ==\n\
         The same scan as one pass vs one scheduling unit per shard; output\n\
         is byte-identical, the difference is pure scheduling (at the\n\
         ambient VADA_THREADS level recorded in the baseline).\n\n{}\n\n\
         == WAL crash recovery (N rows, k edit events) ==\n\
         Reopening a durable knowledge base (snapshot + write-ahead-log\n\
         replay) vs rebuilding the same state in memory from the original\n\
         relation and edit history. The rebuild is a lower bound that\n\
         presumes the lost state is still available — after a real crash\n\
         it is not (that is why the log exists) — so the overhead column\n\
         is the whole price of durability: decoding the full state back\n\
         from disk, a few milliseconds even at tens of thousands of rows.\n\n{}\n\n\
         == Demand-driven (magic) query vs full fixpoint ==\n\
         A bound-argument query answered under QueryMode::Directed derives\n\
         only the facts its demand set reaches; the full fixpoint derives\n\
         every block of the base. Answers are asserted byte-identical, so\n\
         the derivation gap is the pure benefit of demand.\n\n{}\n\n\
         == Persistent query cache (warm vs cold bound queries) ==\n\
         A repeated bound-pattern query served through the QueryCache: the\n\
         cold call pays the demanded build, the warm repeat is a pure\n\
         lookup (zero stratum passes, zero index builds — the counters\n\
         prove it), and a k-row edit maintains the cached view O(change)\n\
         through the incremental session instead of rebuilding it.\n\n{}\n{}",
        table(
            &[
                "base rows",
                "delta rows",
                "full ms",
                "incr ms",
                "full derivations",
                "incr derivations",
                "speedup"
            ],
            &table_rows,
        ),
        table(
            &[
                "base rows",
                "removed rows",
                "full ms",
                "incr ms",
                "full derivations",
                "incr work",
                "speedup"
            ],
            &retract_rows,
        ),
        table(
            &["rows", "shards", "monolithic ms", "sharded ms", "speedup"],
            &scan_rows,
        ),
        table(
            &["rows", "edit events", "wal size", "reopen ms", "in-mem rebuild ms", "overhead"],
            &recovery_rows,
        ),
        table(
            &[
                "base rows",
                "full ms",
                "directed ms",
                "full derivations",
                "directed derivations",
                "derivation ratio"
            ],
            &magic_rows,
        ),
        table(
            &["base rows", "delta rows", "cold ms", "warm ms", "delta ms", "warm speedup"],
            &cache_rows,
        ),
        write_note,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rows_show_less_work() {
        let obs = Obs::enabled();
        let r = measure(2_000, 32, 3, &obs);
        assert!(r.incremental_derivations < r.full_derivations / 10,
            "delta path must derive far less: {} vs {}",
            r.incremental_derivations, r.full_derivations);
        let rr = measure_retraction(2_000, 32, 3, &obs);
        assert!(rr.incremental_work < rr.full_derivations / 10,
            "retraction path must touch far less: {} vs {}",
            rr.incremental_work, rr.full_derivations);
        // the scan measurement asserts byte-identity internally
        let sr = measure_sharded_scan(2_000, 4, 2);
        assert!(sr.monolithic_ms > 0.0 && sr.sharded_ms > 0.0);
        // the recovery measurement asserts version equality internally
        let rec = measure_wal_recovery(500, 16, 2, &obs);
        assert!(rec.wal_bytes > 0 && rec.reopen_ms > 0.0);
        // the magic measurement asserts the >=10x derivation cut and
        // answer byte-identity internally
        let mr = measure_magic(2_000, 50, 2, &obs);
        assert!(mr.directed_derivations > 0, "the demanded chain must still derive");
        // the cache measurement asserts zero warm evaluation work and
        // answer byte-identity internally
        let cr = measure_query_cache(2_000, 32, 2, &obs);
        assert!(cr.cold_ms > 0.0 && cr.warm_ms > 0.0 && cr.delta_ms > 0.0);
        let snapshot = obs.counters();
        assert!(snapshot.get("incremental.outcome.incremental").copied().unwrap_or(0) > 0);
        assert!(snapshot.get("wal.appends").copied().unwrap_or(0) > 0);
        assert!(snapshot.get("magic.rewrite.applied").copied().unwrap_or(0) > 0);
        assert!(snapshot.get("magic.cache.hits").copied().unwrap_or(0) > 0);
        assert!(snapshot.get("magic.cache.misses").copied().unwrap_or(0) > 0);
        let shapes = family_shapes(&obs);
        assert!(
            shapes.iter().any(|l| l.contains("datalog/stratum")),
            "the measurement pass must record deep spans: {shapes:?}"
        );
        assert!(
            shapes.iter().any(|l| l.contains("wal/append")),
            "the recovery pass must record wal spans: {shapes:?}"
        );
        assert!(
            shapes.iter().all(|l| !l.contains("bytes=")),
            "byte magnitudes are redacted from the pinned shapes: {shapes:?}"
        );
        let counters = [("all", snapshot)];
        let span_shapes = [("all", shapes)];
        let json = to_json(&[r], &[rr], &[sr], &[rec], &[mr], &[cr], &counters, &span_shapes);
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"datalog_retraction_vs_full\""), "{json}");
        assert!(json.contains("\"kb_sharded_scan\""), "{json}");
        assert!(json.contains("\"kb_wal_recovery\""), "{json}");
        assert!(json.contains("\"datalog_magic_vs_full\""), "{json}");
        assert!(json.contains("\"datalog_query_cache\""), "{json}");
        assert!(json.contains("vada-bench-baseline/v8"), "{json}");
        // the whole baseline must be well-formed JSON, counters included
        let doc = vada_common::obs::Json::parse(&json).expect("baseline parses");
        let all = doc.get("counters").unwrap().get("all").unwrap();
        assert!(all.get("datalog.stratum.passes").unwrap().as_u64().unwrap() > 0);
        let shapes = doc.get("span_shapes").unwrap().get("all").unwrap();
        assert!(!shapes.items().unwrap().is_empty(), "{json}");
    }
}
