//! The incremental-evaluation baseline: quantify full vs delta
//! re-derivation and persist the numbers as machine-readable JSON
//! (`BENCH_baseline.json`) so the performance trajectory accumulates
//! across PRs instead of living only in terminal scrollback.

use std::time::Instant;

use vada_common::{tuple, Tuple};
use vada_datalog::incremental::{DeltaMode, IncrementalSession};
use vada_datalog::{parse_program, Database, Engine, EngineConfig};

use crate::report::table;

/// Where the machine-readable baseline lands (repo root when the driver
/// runs from there; always printed in the report).
pub const BASELINE_PATH: &str = "BENCH_baseline.json";

const PROGRAM: &str = r#"
    all(X, P) :- a(X, P).
    all(X, P) :- b(X, P).
    picked(X, P) :- a(X, P), k(X).
    wide(X, P, Q) :- picked(X, P), w(P, Q).
"#;

fn base_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n as i64 {
        db.insert("a", tuple![i % 997, i]);
        db.insert("b", tuple![i % 631, i + 10_000_000]);
        if i % 3 == 0 {
            db.insert("k", tuple![i % 997]);
        }
        db.insert("w", tuple![i, i * 2]);
    }
    db
}

fn delta(k: usize, round: usize) -> Vec<(String, Tuple)> {
    (0..k as i64)
        .map(|j| {
            let v = 20_000_000 + (round as i64) * k as i64 + j;
            ("a".to_string(), tuple![v % 997, v])
        })
        .collect()
}

struct Row {
    base_rows: usize,
    delta_rows: usize,
    full_ms: f64,
    incremental_ms: f64,
    full_derivations: usize,
    incremental_derivations: usize,
}

fn measure(n: usize, k: usize, rounds: usize) -> Row {
    let program = parse_program(PROGRAM).unwrap();
    let engine = Engine::new(EngineConfig::default());

    // full: median wall-clock of re-deriving base+delta from scratch
    let mut grown = base_db(n);
    for (p, t) in delta(k, 0) {
        grown.insert(&p, t);
    }
    let input_facts = grown.total_facts();
    let mut full_times = Vec::new();
    let mut full_derivations = 0usize;
    for _ in 0..rounds {
        let input = grown.clone();
        let start = Instant::now();
        let out = engine.run(&program, input).expect("full run evaluates");
        full_times.push(start.elapsed().as_secs_f64() * 1e3);
        full_derivations = out.total_facts() - input_facts;
    }

    // incremental: median wall-clock of one k-fact delta apply
    let mut session = IncrementalSession::new(EngineConfig::default(), PROGRAM).unwrap();
    session.run_full(base_db(n)).unwrap();
    session.apply(delta(k, 0)).unwrap();
    let mut inc_times = Vec::new();
    let mut inc_derivations = 0usize;
    for round in 1..=rounds {
        let facts = delta(k, round);
        let start = Instant::now();
        session.apply(facts).expect("delta applies");
        inc_times.push(start.elapsed().as_secs_f64() * 1e3);
        let outcome = session.last_outcome().expect("apply records an outcome");
        assert_eq!(outcome.mode, DeltaMode::Incremental, "baseline must hit the fast path");
        inc_derivations = outcome.derived_facts;
    }

    let median = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    Row {
        base_rows: n,
        delta_rows: k,
        full_ms: median(full_times),
        incremental_ms: median(inc_times),
        full_derivations,
        incremental_derivations: inc_derivations,
    }
}

fn to_json(rows: &[Row]) -> String {
    let workers = vada_common::Parallelism::from_env().workers();
    let mut out = String::from("{\n  \"schema\": \"vada-bench-baseline/v1\",\n");
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str("  \"datalog_incremental_vs_full\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"base_rows\": {}, \"delta_rows\": {}, \"full_ms\": {:.3}, \
             \"incremental_ms\": {:.3}, \"full_derivations\": {}, \
             \"incremental_derivations\": {}, \"speedup\": {:.1}}}{}\n",
            r.base_rows,
            r.delta_rows,
            r.full_ms,
            r.incremental_ms,
            r.full_derivations,
            r.incremental_derivations,
            r.full_ms / r.incremental_ms.max(1e-9),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Run the baseline measurements, write `BENCH_baseline.json`, and return
/// the human-readable report.
pub fn incremental_baseline() -> String {
    let rows = vec![measure(5_000, 64, 5), measure(20_000, 64, 5)];
    let json = to_json(&rows);
    let write_note = match std::fs::write(BASELINE_PATH, &json) {
        Ok(()) => format!("baseline written to {BASELINE_PATH}"),
        Err(e) => format!("could not write {BASELINE_PATH}: {e}"),
    };
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.base_rows.to_string(),
                r.delta_rows.to_string(),
                format!("{:.2}", r.full_ms),
                format!("{:.2}", r.incremental_ms),
                r.full_derivations.to_string(),
                r.incremental_derivations.to_string(),
                format!("{:.0}x", r.full_ms / r.incremental_ms.max(1e-9)),
            ]
        })
        .collect();
    format!(
        "== Incremental delta evaluation vs full re-derivation ==\n\
         A k-row delta against an N-row base: the full path re-derives\n\
         everything, the incremental session re-derives O(k).\n\n{}\n{}",
        table(
            &[
                "base rows",
                "delta rows",
                "full ms",
                "incr ms",
                "full derivations",
                "incr derivations",
                "speedup"
            ],
            &table_rows,
        ),
        write_note,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rows_show_less_work() {
        let r = measure(2_000, 32, 3);
        assert!(r.incremental_derivations < r.full_derivations / 10,
            "delta path must derive far less: {} vs {}",
            r.incremental_derivations, r.full_derivations);
        let json = to_json(&[r]);
        assert!(json.contains("\"speedup\""), "{json}");
    }
}
