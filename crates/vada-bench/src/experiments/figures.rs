//! Reproductions of the paper's displays: Table 1, Figure 2, Figure 3,
//! and the quantified pay-as-you-go experiment behind the §3 demo claims.

use vada_core::{default_transducers, TransducerCatalog};
use vada_extract::{Scenario, ScenarioConfig};
use vada_extract::sources::target_schema;

use crate::paygo::{attr_table, paper_user_context, run_paygo, PaygoConfig};
use crate::report;

/// Table 1: the transducer catalogue with declarative input dependencies.
pub fn table1() -> String {
    let fleet = default_transducers();
    format!(
        "=== Table 1 — transducer input dependencies ===\n\
         (paper shows 5 example rows; the full default fleet follows)\n\n{}",
        TransducerCatalog::render(&fleet)
    )
}

/// Figure 2: the demonstration scenario — sources (a), target schema (b),
/// data context (c), user context (d).
pub fn fig2() -> String {
    let s = Scenario::generate(ScenarioConfig::default());
    let mut out = String::new();
    out.push_str("=== Figure 2 — demonstration scenario (seed 42) ===\n\n");
    out.push_str("(a) Sources\n");
    out.push_str(&format!("{}\n{}\n", s.rightmove, s.rightmove.to_table(5)));
    out.push_str(&format!("{}\n{}\n", s.onthemarket, s.onthemarket.to_table(5)));
    out.push_str(&format!("{}\n{}\n", s.deprivation, s.deprivation.to_table(5)));
    out.push_str("(b) Target schema\n");
    out.push_str(&format!("{}\n\n", target_schema()));
    out.push_str("(c) Data context\n");
    out.push_str(&format!("{}\n{}\n", s.address, s.address.to_table(5)));
    out.push_str("(d) User context (pairwise comparisons)\n");
    for st in paper_user_context() {
        out.push_str(&format!(
            "  {} {} {}\n",
            st.more_important, st.strength, st.less_important
        ));
    }
    out
}

/// Figure 3: the four screens' content — target registration, data-context
/// association, the result grid with feedback marks, and the derived AHP
/// weights.
pub fn fig3() -> String {
    let outcome = run_paygo(&PaygoConfig::default());
    let w = &outcome.wrangler;
    let mut out = String::new();
    out.push_str("=== Figure 3 — web-interface content, reproduced as text ===\n\n");
    out.push_str("(a) Target schema registration\n");
    out.push_str(&format!("{}\n\n", target_schema()));
    out.push_str("(b) Data context association\n");
    for (rel, ctx_attr, tgt_attr) in w.kb().context_bindings() {
        out.push_str(&format!("  {rel}.{ctx_attr}  ->  property.{tgt_attr}\n"));
    }
    out.push('\n');
    out.push_str("(c) Results (first rows; cells the oracle annotated incorrect were vetoed to null)\n");
    if let Some(result) = w.result() {
        out.push_str(&result.to_table(8));
    }
    out.push('\n');
    out.push_str("(d) User context: derived AHP weights\n");
    let target = w.kb().target_schema().expect("target registered").name.clone();
    let statements =
        vada_core::criteria::canonicalize_statements(w.kb().user_context(), &target)
            .expect("paper statements parse");
    let ctx = vada_context::UserContext::derive(&statements, &[]).expect("derivable");
    for (criterion, weight) in ctx.weight_table() {
        out.push_str(&format!("  {criterion:<28} {weight:.3}\n"));
    }
    out.push_str(&format!(
        "  (consistency ratio {:.3}; sparse judgement sets above 0.1 are reported, not rejected)\n",
        ctx.ahp.consistency_ratio
    ));
    out
}

/// The quantified §3 claims: result quality after each pay-as-you-go step.
pub fn paygo_experiment() -> String {
    let outcome = run_paygo(&PaygoConfig::default());
    let mut out = String::new();
    out.push_str("=== Pay-as-you-go (paper §3 claim (i)) ===\n\n");
    out.push_str(&report::paygo_table(&outcome.steps));
    out.push('\n');
    for s in &outcome.steps {
        out.push_str(&report::attr_detail(s));
        out.push('\n');
    }
    // headline check mirrored into the report
    let first = outcome.steps.first().expect("steps").quality.f1;
    let last = outcome.steps.last().expect("steps").quality.f1;
    out.push_str(&format!(
        "F1 bootstrap {first:.3} -> final {last:.3}: {}\n",
        if last > first { "IMPROVED (claim holds)" } else { "NOT IMPROVED" }
    ));
    // completeness movement per attribute
    let a0 = attr_table(&outcome.steps[0]);
    let an = attr_table(outcome.steps.last().expect("steps"));
    let improved = an
        .iter()
        .filter(|(attr, (c, _))| *c >= a0.get(*attr).map(|(c0, _)| *c0).unwrap_or(0.0) - 1e-9)
        .count();
    out.push_str(&format!(
        "{improved}/{} attributes end with completeness >= bootstrap\n",
        an.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_full_fleet() {
        let t = table1();
        for name in [
            "schema_matching",
            "instance_matching",
            "mapping_generation",
            "mapping_selection",
            "cfd_learning",
        ] {
            assert!(t.contains(name), "missing {name}");
        }
    }

    #[test]
    fn fig2_shows_all_four_panels() {
        let f = fig2();
        assert!(f.contains("(a) Sources"));
        assert!(f.contains("rightmove"));
        assert!(f.contains("(b) Target schema"));
        assert!(f.contains("crimerank"));
        assert!(f.contains("(c) Data context"));
        assert!(f.contains("(d) User context"));
        assert!(f.contains("very strongly"));
    }

    #[test]
    fn paygo_reports_improvement() {
        let p = paygo_experiment();
        assert!(p.contains("IMPROVED (claim holds)"), "{p}");
    }
}
