//! CFD learning and repair (paper §2.2–2.3): what is learned from the
//! reference data, how many violations the raw wrangle has, and what
//! repair fixes.

use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_quality::{
    detect_violations, learn_cfds, repair_with_reference, CfdLearnConfig, RepairConfig,
};
use vada_common::{Relation, Tuple, Value};
use vada_extract::sources::target_schema;

use crate::report;

/// Project a raw source into the target shape (no cleaning) so repair's
/// effect is isolated from the rest of the pipeline.
fn raw_projection(s: &Scenario) -> Relation {
    let mut rel = Relation::empty(target_schema());
    for t in s.rightmove.iter() {
        // rightmove columns: price, street, postcode, bedrooms, type, description
        rel.push(Tuple::new(vec![
            t[4].clone(),
            t[5].clone(),
            t[1].clone(),
            t[2].clone(),
            t[3].clone(),
            t[0].clone(),
            Value::Null,
        ]))
        .expect("target arity");
    }
    rel
}

/// Run the experiment.
pub fn cfd_and_repair() -> String {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 200, seed: 42 },
        ..Default::default()
    });
    let mut out = String::new();
    out.push_str("=== CFD learning & repair (paper §2.2–2.3) ===\n\n");

    let cfds = learn_cfds(&CfdLearnConfig::default(), &s.address);
    out.push_str(&format!("CFDs learned from `address` ({} rows):\n", s.address.len()));
    let variable: Vec<_> = cfds.iter().filter(|c| c.rhs.1.is_none()).collect();
    for c in variable.iter().take(10) {
        out.push_str(&format!("  {}  (support {})\n", c.display(), c.support));
    }
    let constants = cfds.len() - variable.len();
    out.push_str(&format!(
        "  ... plus {constants} constant CFD pattern(s)\n\n"
    ));

    let mut result = raw_projection(&s);
    let before = detect_violations(&result, &cfds);
    let before_rows = vada_quality::violations::violating_row_count(&before);
    let q_before = vada_extract::score_result(&s.universe, &result);

    let report_fix = repair_with_reference(
        &RepairConfig::default(),
        &mut result,
        &cfds,
        &s.address,
        Some(("street", "postcode")),
    );
    let after = detect_violations(&result, &cfds);
    let after_rows = vada_quality::violations::violating_row_count(&after);
    let q_after = vada_extract::score_result(&s.universe, &result);

    let rows = vec![
        vec![
            "before repair".to_string(),
            before.len().to_string(),
            before_rows.to_string(),
            format!("{:.4}", q_before.attr_accuracy.get("street").copied().unwrap_or(0.0)),
            format!("{:.4}", q_before.precision),
        ],
        vec![
            "after repair".to_string(),
            after.len().to_string(),
            after_rows.to_string(),
            format!("{:.4}", q_after.attr_accuracy.get("street").copied().unwrap_or(0.0)),
            format!("{:.4}", q_after.precision),
        ],
    ];
    out.push_str(&report::table(
        &["state", "violations", "violating rows", "street accuracy", "cell precision"],
        &rows,
    ));
    out.push_str(&format!(
        "\nrepair actions: {} CFD fixes, {} null fills, {} fuzzy street fixes\n",
        report_fix.cfd_fixes, report_fix.null_fills, report_fix.fuzzy_fixes
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_improves_street_accuracy() {
        let s = Scenario::generate(ScenarioConfig {
            universe: UniverseConfig { properties: 100, seed: 3 },
            ..Default::default()
        });
        let cfds = learn_cfds(&CfdLearnConfig::default(), &s.address);
        let mut result = raw_projection(&s);
        let before = vada_extract::score_result(&s.universe, &result);
        let rep = repair_with_reference(
            &RepairConfig::default(),
            &mut result,
            &cfds,
            &s.address,
            Some(("street", "postcode")),
        );
        let after = vada_extract::score_result(&s.universe, &result);
        // with unit-level postcodes the FD postcode→street holds on the
        // reference, so typo'd streets are fixed by CFD lookup (fuzzy repair
        // is the fallback when key FDs don't hold); either way cells change
        assert!(rep.total() > 0, "defects must be present and repaired: {rep:?}");
        let acc_b = before.attr_accuracy["street"];
        let acc_a = after.attr_accuracy["street"];
        assert!(acc_a > acc_b, "street accuracy {acc_b} -> {acc_a}");
    }

    #[test]
    fn report_shows_learned_fds() {
        let r = cfd_and_repair();
        assert!(r.contains("CFDs learned"));
        assert!(r.contains("postcode"));
        assert!(r.contains("repair actions"));
    }
}
