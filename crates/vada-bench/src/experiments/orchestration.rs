//! Orchestration dynamics (paper §3 claim (iii) and §2.4): the trace of
//! transducer firings per pay-as-you-go step, and the generic vs specific
//! network-transducer policies.

use vada_core::{GenericPolicy, SchedulingPolicy, SpecificPolicy};

use crate::paygo::{run_paygo, PaygoConfig};
use crate::report;

fn policy_generic() -> Box<dyn SchedulingPolicy> {
    Box::new(GenericPolicy)
}

fn policy_specific() -> Box<dyn SchedulingPolicy> {
    Box::new(SpecificPolicy::prefer_instance_matchers())
}

/// Run both policies and render traces + per-step firing counts.
pub fn orchestration_dynamics() -> String {
    let mut out = String::new();
    out.push_str("=== Dynamic orchestration (paper §3 claim (iii), §2.4) ===\n\n");

    for (label, make) in [
        ("generic policy (activity order)", policy_generic as fn() -> _),
        ("specific policy (prefer instance matchers)", policy_specific as fn() -> _),
    ] {
        let cfg = PaygoConfig { policy: Some(make), ..Default::default() };
        let outcome = run_paygo(&cfg);
        out.push_str(&format!("--- {label} ---\n"));
        let rows: Vec<Vec<String>> = outcome
            .steps
            .iter()
            .map(|s| {
                vec![s.step.clone(), s.executed.to_string(), s.ran.join(" -> ")]
            })
            .collect();
        out.push_str(&report::table(&["step", "runs", "transducer firing order"], &rows));
        out.push_str(&format!(
            "total executions: {}   final f1: {:.3}\n\n",
            outcome.wrangler.trace().len(),
            outcome.steps.last().expect("steps").quality.f1
        ));
    }
    out.push_str(
        "note: under the specific policy, instance_matching fires before\n\
         schema_matching as soon as context instances exist (the paper's §2.4 example)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_policies_complete_and_differ_in_order() {
        let generic = run_paygo(&PaygoConfig {
            policy: Some(policy_generic),
            ..Default::default()
        });
        let specific = run_paygo(&PaygoConfig {
            policy: Some(policy_specific),
            ..Default::default()
        });
        // both reach a result of the same quality class
        assert!(generic.steps.last().unwrap().quality.f1 > 0.6);
        assert!(specific.steps.last().unwrap().quality.f1 > 0.6);
        // in the data-context step the specific policy runs
        // instance_matching before schema_matching
        let order_of = |outcome: &crate::paygo::PaygoOutcome| {
            let ran = &outcome.steps[1].ran;
            let im = ran.iter().position(|n| n == "instance_matching");
            let sm = ran.iter().position(|n| n == "schema_matching");
            (im, sm)
        };
        let (im, sm) = order_of(&specific);
        if let (Some(im), Some(sm)) = (im, sm) {
            assert!(im < sm, "specific policy must prefer instance matching");
        } else {
            assert!(im.is_some(), "instance matching must run in step 2");
        }
    }

    #[test]
    fn report_mentions_policies() {
        let r = orchestration_dynamics();
        assert!(r.contains("generic policy"));
        assert!(r.contains("specific policy"));
        assert!(r.contains("firing order"));
    }
}
