//! User-context comparison (paper §2.2): the same data under different
//! priorities — the crime analysis vs the property-size analysis — yields
//! different weights and (potentially) different mapping selections.

use vada_context::UserContext;
use vada_core::criteria::canonicalize_statements;
use vada_kb::PairwiseStatement;

use crate::paygo::{paper_user_context, run_paygo, PaygoConfig};
use crate::report;

/// The §2.2 alternative: the user now analyses property size, so bedrooms
/// completeness dominates.
pub fn size_user_context() -> Vec<PairwiseStatement> {
    vec![
        PairwiseStatement {
            more_important: "completeness(property.bedrooms)".into(),
            less_important: "accuracy(property.type)".into(),
            strength: "very strongly".into(),
        },
        PairwiseStatement {
            more_important: "completeness(property.bedrooms)".into(),
            less_important: "completeness(crimerank)".into(),
            strength: "strongly".into(),
        },
        PairwiseStatement {
            more_important: "completeness(property.street)".into(),
            less_important: "completeness(property.postcode)".into(),
            strength: "moderately".into(),
        },
    ]
}

fn weights_of(statements: &[PairwiseStatement]) -> Vec<(String, f64)> {
    let canonical =
        canonicalize_statements(statements, "property").expect("statements parse");
    UserContext::derive(&canonical, &[])
        .expect("derivable")
        .weight_table()
}

/// Compare the two contexts end to end.
pub fn context_comparison() -> String {
    let mut out = String::new();
    out.push_str("=== User-context comparison (paper §2.2) ===\n\n");

    for (label, statements) in [
        ("crime analysis (Fig 2d)", paper_user_context()),
        ("property-size analysis", size_user_context()),
    ] {
        out.push_str(&format!("--- {label} ---\n"));
        out.push_str("derived AHP weights:\n");
        for (c, w) in weights_of(&statements) {
            out.push_str(&format!("  {c:<28} {w:.3}\n"));
        }
        let cfg = PaygoConfig { user_context: statements, ..Default::default() };
        let outcome = run_paygo(&cfg);
        let last = outcome.steps.last().expect("steps ran");
        out.push_str(&format!(
            "selected mapping: {}   utility-driven result: f1 {:.3}, crimerank completeness {:.3}, bedrooms completeness {:.3}\n\n",
            last.selected_mapping.clone().unwrap_or_default(),
            last.quality.f1,
            last.quality.attr_completeness.get("crimerank").copied().unwrap_or(0.0),
            last.quality.attr_completeness.get("bedrooms").copied().unwrap_or(0.0),
        ));
    }

    // weight shift summary
    let crime = weights_of(&paper_user_context());
    let size = weights_of(&size_user_context());
    let get = |t: &[(String, f64)], k: &str| {
        t.iter().find(|(c, _)| c == k).map(|(_, w)| *w).unwrap_or(0.0)
    };
    let rows = vec![
        vec![
            "completeness(crimerank)".to_string(),
            format!("{:.3}", get(&crime, "completeness(crimerank)")),
            format!("{:.3}", get(&size, "completeness(crimerank)")),
        ],
        vec![
            "completeness(bedrooms)".to_string(),
            format!("{:.3}", get(&crime, "completeness(bedrooms)")),
            format!("{:.3}", get(&size, "completeness(bedrooms)")),
        ],
    ];
    out.push_str(&report::table(&["criterion", "crime ctx", "size ctx"], &rows));
    out.push_str("\nthe pairwise statements reorder the weights exactly as §2.2 describes\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_swap_dominant_criterion() {
        let crime = weights_of(&paper_user_context());
        let size = weights_of(&size_user_context());
        let get = |t: &[(String, f64)], k: &str| {
            t.iter().find(|(c, _)| c == k).map(|(_, w)| *w).unwrap_or(0.0)
        };
        assert!(
            get(&crime, "completeness(crimerank)") > get(&crime, "completeness(bedrooms)")
        );
        assert!(get(&size, "completeness(bedrooms)") > get(&size, "completeness(crimerank)"));
    }

    #[test]
    fn report_renders_both_contexts() {
        let r = context_comparison();
        assert!(r.contains("crime analysis"));
        assert!(r.contains("property-size analysis"));
        assert!(r.contains("selected mapping"));
    }
}
