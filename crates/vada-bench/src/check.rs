//! `repro bench --check` — the structural-cost regression gate.
//!
//! Re-runs the baseline experiment families and diffs the *structural*
//! channels (counters and span shapes) against the committed
//! `BENCH_baseline.json`. Wall-clock numbers are never compared — they
//! belong to the timing channel and drift with the machine. Counters are
//! compared exactly unless a key carries a declared tolerance band
//! (environment-sensitive magnitudes like `wal.bytes`); span shapes are
//! compared byte-for-byte. A key present on one side but not the other is
//! a hard error in *either* direction: a vanished counter means lost
//! coverage, a new one means the baseline is stale.
//!
//! `VADA_BENCH_CHECK_PERTURB=<counter>` injects +1 into that counter in
//! every measured family snapshot (creating the key where absent) — the
//! CI negative self-test uses it to prove the gate actually fails.

use std::collections::BTreeMap;

use vada_common::obs::{key, Json};

use crate::experiments::incremental::{measure_families, BASELINE_PATH};

/// Relative tolerance for one counter key: `0.0` means exact match.
/// The table is the declared list of environment-sensitive counters —
/// everything else is scheduling-invariant and must reproduce exactly.
pub fn tolerance(counter: &str) -> f64 {
    match counter {
        // WAL byte totals shift with serialization details the cost model
        // does not pin (path lengths never land in the log, but record
        // framing may breathe a little across environments)
        k if k == key::WAL_BYTES => 0.10,
        _ => 0.0,
    }
}

/// The inclusive band a counter is allowed to land in, given its baseline
/// value. Exact keys collapse to `[b, b]`; banded keys widen by the
/// relative tolerance, rounded outward so integer observations on the
/// boundary pass.
pub fn allowed_band(counter: &str, baseline: u64) -> (u64, u64) {
    let rel = tolerance(counter);
    if rel == 0.0 {
        return (baseline, baseline);
    }
    let b = baseline as f64;
    let lo = (b * (1.0 - rel)).floor().max(0.0) as u64;
    let hi = (b * (1.0 + rel)).ceil() as u64;
    (lo, hi)
}

/// Diff one family's observed counter snapshot against its baseline.
/// Returns one human-readable failure line per regression; an empty vec
/// means the family's cost model is unchanged (within declared bands).
pub fn diff_counters(
    family: &str,
    baseline: &BTreeMap<String, u64>,
    observed: &BTreeMap<String, u64>,
) -> Vec<String> {
    let mut failures = Vec::new();
    for (k, &b) in baseline {
        match observed.get(k) {
            None => failures.push(format!(
                "FAIL {family} / {k}: present in baseline ({b}) but missing from this run \
                 — structural coverage was lost"
            )),
            Some(&o) => {
                let (lo, hi) = allowed_band(k, b);
                if o < lo || o > hi {
                    let band = if lo == hi {
                        format!("exactly {lo}")
                    } else {
                        format!("{lo}..={hi} (±{:.0}%)", tolerance(k) * 100.0)
                    };
                    failures.push(format!(
                        "FAIL {family} / {k}: baseline {b}, observed {o}, allowed {band}"
                    ));
                }
            }
        }
    }
    for (k, &o) in observed {
        if !baseline.contains_key(k) {
            failures.push(format!(
                "FAIL {family} / {k}: observed ({o}) but absent from the baseline \
                 — regenerate it with `repro bench` and commit the diff"
            ));
        }
    }
    failures
}

/// Diff one family's observed span shape against its baseline — byte
/// identity, reported as the first diverging line (with its index) plus
/// the length delta when the trees differ in size.
pub fn diff_shapes(family: &str, baseline: &[String], observed: &[String]) -> Vec<String> {
    let mut failures = Vec::new();
    if baseline.len() != observed.len() {
        failures.push(format!(
            "FAIL {family} / span tree: baseline has {} spans, this run has {}",
            baseline.len(),
            observed.len()
        ));
    }
    for (i, (b, o)) in baseline.iter().zip(observed.iter()).enumerate() {
        if b != o {
            failures.push(format!(
                "FAIL {family} / span tree line {}: baseline `{b}`, observed `{o}`",
                i + 1
            ));
            break; // one divergence pins the earliest drift; the rest cascades
        }
    }
    failures
}

fn parse_counters(doc: &Json) -> Result<BTreeMap<String, BTreeMap<String, u64>>, String> {
    let node = doc
        .get("counters")
        .ok_or("baseline has no `counters` section")?;
    let mut out = BTreeMap::new();
    for (family, snapshot) in node.entries().ok_or("`counters` is not an object")? {
        let mut map = BTreeMap::new();
        for (k, v) in snapshot
            .entries()
            .ok_or_else(|| format!("counters for {family} is not an object"))?
        {
            map.insert(
                k.clone(),
                v.as_u64()
                    .ok_or_else(|| format!("counter {family}/{k} is not an integer"))?,
            );
        }
        out.insert(family.clone(), map);
    }
    Ok(out)
}

fn parse_shapes(doc: &Json) -> Result<BTreeMap<String, Vec<String>>, String> {
    let node = doc.get("span_shapes").ok_or(
        "baseline has no `span_shapes` section — it predates schema v8; \
         regenerate it with `repro bench` and commit the diff",
    )?;
    let mut out = BTreeMap::new();
    for (family, lines) in node.entries().ok_or("`span_shapes` is not an object")? {
        let mut v = Vec::new();
        for line in lines
            .items()
            .ok_or_else(|| format!("span_shapes for {family} is not an array"))?
        {
            v.push(
                line.as_str()
                    .ok_or_else(|| format!("span shape in {family} is not a string"))?
                    .to_string(),
            );
        }
        out.insert(family.clone(), v);
    }
    Ok(out)
}

/// Load the committed baseline, re-measure every family, and diff the
/// structural channels. `Ok` carries the pass report; `Err` carries the
/// per-counter failure report (or the hard error that prevented the
/// comparison).
pub fn run_check() -> Result<String, String> {
    let raw = std::fs::read_to_string(BASELINE_PATH).map_err(|e| {
        format!(
            "cannot read {BASELINE_PATH}: {e} — run `repro bench` once to \
             establish the baseline, then commit it"
        )
    })?;
    let doc = Json::parse(&raw).map_err(|e| format!("{BASELINE_PATH} does not parse: {e}"))?;
    let schema = doc.get("schema").and_then(|s| s.as_str()).unwrap_or("");
    if schema != "vada-bench-baseline/v8" {
        return Err(format!(
            "unsupported baseline schema `{schema}` (want vada-bench-baseline/v8) \
             — regenerate with `repro bench`"
        ));
    }
    let base_counters = parse_counters(&doc)?;
    let base_shapes = parse_shapes(&doc)?;

    let fam = measure_families();
    let mut obs_counters: Vec<(&str, BTreeMap<String, u64>)> = fam
        .counters
        .iter()
        .map(|(f, m)| (*f, m.clone()))
        .collect();
    if let Ok(perturb) = std::env::var("VADA_BENCH_CHECK_PERTURB") {
        let perturb = perturb.trim().to_string();
        if !perturb.is_empty() {
            for (_, m) in obs_counters.iter_mut() {
                *m.entry(perturb.clone()).or_insert(0) += 1;
            }
        }
    }

    let mut failures = Vec::new();
    let mut compared = 0usize;
    for (family, base) in &base_counters {
        match obs_counters.iter().find(|(f, _)| f == family) {
            None => failures.push(format!(
                "FAIL {family}: family present in baseline but not measured by this build"
            )),
            Some((_, obs)) => {
                compared += base.len();
                failures.extend(diff_counters(family, base, obs));
            }
        }
    }
    for (family, _) in &obs_counters {
        if !base_counters.contains_key(*family) {
            failures.push(format!(
                "FAIL {family}: family measured by this build but absent from the baseline \
                 — regenerate it with `repro bench`"
            ));
        }
    }
    let mut shape_lines = 0usize;
    for (family, base) in &base_shapes {
        match fam.span_shapes.iter().find(|(f, _)| f == family) {
            None => failures.push(format!(
                "FAIL {family}: span tree pinned in baseline but not recorded by this build"
            )),
            Some((_, obs)) => {
                shape_lines += base.len();
                failures.extend(diff_shapes(family, base, obs));
            }
        }
    }
    for (family, _) in &fam.span_shapes {
        if !base_shapes.contains_key(*family) {
            failures.push(format!(
                "FAIL {family}: span tree recorded by this build but absent from the baseline"
            ));
        }
    }

    if failures.is_empty() {
        Ok(format!(
            "bench --check: OK — {compared} counters across {} families match the \
             baseline (declared bands respected), {shape_lines} span-tree lines \
             byte-identical",
            base_counters.len()
        ))
    } else {
        Err(format!(
            "bench --check: {} structural regression(s) against {BASELINE_PATH}\n{}",
            failures.len(),
            failures.join("\n")
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pairs: &[(&str, u64)]) -> BTreeMap<String, u64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn exact_counters_fail_on_any_drift() {
        let base = m(&[("datalog.stratum.passes", 10)]);
        let same = diff_counters("fam", &base, &m(&[("datalog.stratum.passes", 10)]));
        assert!(same.is_empty(), "{same:?}");
        let off = diff_counters("fam", &base, &m(&[("datalog.stratum.passes", 11)]));
        assert_eq!(off.len(), 1);
        assert!(off[0].contains("baseline 10, observed 11"), "{}", off[0]);
        assert!(off[0].contains("exactly 10"), "{}", off[0]);
    }

    #[test]
    fn banded_counters_pass_in_band_and_fail_outside() {
        let base = m(&[("wal.bytes", 1000)]);
        assert!(diff_counters("fam", &base, &m(&[("wal.bytes", 1099)])).is_empty());
        assert!(diff_counters("fam", &base, &m(&[("wal.bytes", 901)])).is_empty());
        // the band is rounded outward, so the exact ±10% boundary passes
        assert!(diff_counters("fam", &base, &m(&[("wal.bytes", 1100)])).is_empty());
        let over = diff_counters("fam", &base, &m(&[("wal.bytes", 1101)]));
        assert_eq!(over.len(), 1);
        assert!(over[0].contains("900..=1100"), "{}", over[0]);
        assert!(over[0].contains("±10%"), "{}", over[0]);
        let under = diff_counters("fam", &base, &m(&[("wal.bytes", 899)]));
        assert_eq!(under.len(), 1, "{under:?}");
    }

    #[test]
    fn missing_keys_are_hard_errors_in_both_directions() {
        let base = m(&[("a", 1), ("b", 2)]);
        let lost = diff_counters("fam", &base, &m(&[("a", 1)]));
        assert_eq!(lost.len(), 1);
        assert!(lost[0].contains("missing from this run"), "{}", lost[0]);
        let new = diff_counters("fam", &base, &m(&[("a", 1), ("b", 2), ("c", 3)]));
        assert_eq!(new.len(), 1);
        assert!(new[0].contains("absent from the baseline"), "{}", new[0]);
    }

    #[test]
    fn shape_diff_reports_first_divergence_and_length_delta() {
        let base = vec!["1 0 orchestrator/run".to_string(), "2 1 datalog/run".to_string()];
        assert!(diff_shapes("fam", &base, &base.clone()).is_empty());
        let shorter = diff_shapes("fam", &base, &base[..1].to_vec());
        assert_eq!(shorter.len(), 1);
        assert!(shorter[0].contains("2 spans"), "{}", shorter[0]);
        let diverged = diff_shapes(
            "fam",
            &base,
            &vec!["1 0 orchestrator/run".to_string(), "2 1 datalog/stratum".to_string()],
        );
        assert_eq!(diverged.len(), 1);
        assert!(diverged[0].contains("line 2"), "{}", diverged[0]);
        assert!(diverged[0].contains("datalog/run"), "{}", diverged[0]);
    }

    #[test]
    fn band_math_rounds_outward_and_never_underflows() {
        assert_eq!(allowed_band("wal.bytes", 0), (0, 0));
        assert_eq!(allowed_band("wal.bytes", 10), (9, 11));
        assert_eq!(allowed_band("anything.else", 7), (7, 7));
    }
}
