//! # vada-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! displays (Table 1, Figures 2–3) and to quantify the demonstration's
//! pay-as-you-go claims. The `repro` binary drives the experiments listed
//! in DESIGN.md §4; the Criterion benches cover the scaling behaviour of
//! every subsystem.

pub mod check;
pub mod experiments;
pub mod paygo;
pub mod report;

pub use paygo::{run_paygo, PaygoConfig, PaygoOutcome, StepSnapshot};

/// Criterion group label recording the active worker count, so sequential
/// and parallel runs of a bench land in distinct series instead of
/// polluting each other's history. The assert re-derives the worker count
/// from the *documented* `VADA_THREADS` contract (trim, parse, ≥ 2 means
/// threads) and pins `Parallelism::from_env` to it — if the substrate's
/// parsing ever drifts from that spec, parallel bench runs fail loudly
/// instead of recording mislabelled timings.
pub fn par_group(base: &str) -> String {
    let workers = vada_common::Parallelism::from_env().workers();
    if let Some(requested) = std::env::var("VADA_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 2)
    {
        assert_eq!(
            workers,
            requested.min(vada_common::par::MAX_WORKERS),
            "VADA_THREADS={requested} must be recorded in the bench label"
        );
    }
    format!("{base}/t{workers}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn par_group_records_worker_count() {
        let label = super::par_group("area/bench");
        let workers = vada_common::Parallelism::from_env().workers();
        assert_eq!(label, format!("area/bench/t{workers}"));
    }
}
