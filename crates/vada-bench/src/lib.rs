//! # vada-bench
//!
//! The experiment harness: everything needed to regenerate the paper's
//! displays (Table 1, Figures 2–3) and to quantify the demonstration's
//! pay-as-you-go claims. The `repro` binary drives the experiments listed
//! in DESIGN.md §4; the Criterion benches cover the scaling behaviour of
//! every subsystem.

pub mod experiments;
pub mod paygo;
pub mod report;

pub use paygo::{run_paygo, PaygoConfig, PaygoOutcome, StepSnapshot};
