//! Plain-text report rendering shared by the `repro` binary.

use crate::paygo::{attr_table, StepSnapshot};

/// Render a fixed-width table from a header and rows.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], out: &mut String| {
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", c, w = widths[i]));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    render_row(
        &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &mut out,
    );
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        render_row(row, &mut out);
    }
    out
}

/// Render the pay-as-you-go quality progression.
pub fn paygo_table(steps: &[StepSnapshot]) -> String {
    let rows: Vec<Vec<String>> = steps
        .iter()
        .map(|s| {
            vec![
                s.step.clone(),
                s.rows.to_string(),
                format!("{:.3}", s.quality.precision),
                format!("{:.3}", s.quality.recall),
                format!("{:.3}", s.quality.f1),
                s.executed.to_string(),
                s.selected_mapping.clone().unwrap_or_default(),
            ]
        })
        .collect();
    table(
        &["step", "rows", "precision", "recall", "f1", "transducer runs", "selected mapping"],
        &rows,
    )
}

/// Render per-attribute completeness/accuracy for one step.
pub fn attr_detail(s: &StepSnapshot) -> String {
    let rows: Vec<Vec<String>> = attr_table(s)
        .into_iter()
        .map(|(attr, (c, a))| vec![attr, format!("{c:.3}"), format!("{a:.3}")])
        .collect();
    format!(
        "{}\n{}",
        s.step,
        table(&["attribute", "completeness", "accuracy"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["a", "long_header"],
            &[vec!["xx".into(), "y".into()], vec!["z".into(), "wwww".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a "));
        assert!(lines[0].contains("long_header"));
    }
}
