//! `repro` — regenerate the paper's tables, figures and demo claims.
//!
//! ```text
//! cargo run -p vada-bench --bin repro --release -- all
//! cargo run -p vada-bench --bin repro --release -- paygo feedback
//! ```

use vada_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let mut unknown = Vec::new();
    for id in ids {
        match experiments::run(id) {
            Some(report) => {
                println!("{report}");
                println!();
            }
            None => unknown.push(id.to_string()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} — available: {}",
            unknown.join(", "),
            experiments::ALL.join(", ")
        );
        std::process::exit(2);
    }
}
