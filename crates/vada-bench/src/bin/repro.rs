//! `repro` — regenerate the paper's tables, figures and demo claims.
//!
//! ```text
//! cargo run -p vada-bench --bin repro --release -- all
//! cargo run -p vada-bench --bin repro --release -- paygo feedback
//! cargo run -p vada-bench --bin repro --release -- bench --check
//! ```
//!
//! `bench --check` re-measures the baseline families and diffs their
//! structural counters and span shapes against the committed
//! `BENCH_baseline.json` instead of rewriting it — exit 1 on regression.

use vada_bench::{check, experiments};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--check") {
        args.retain(|a| a != "--check" && a != "bench");
        if !args.is_empty() {
            eprintln!("--check applies to the bench experiment only (got: {})", args.join(", "));
            std::process::exit(2);
        }
        match check::run_check() {
            Ok(report) => println!("{report}"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
        return;
    }
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        experiments::ALL.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    let mut unknown = Vec::new();
    for id in ids {
        match experiments::run(id) {
            Some(report) => {
                println!("{report}");
                println!();
            }
            None => unknown.push(id.to_string()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} — available: {}",
            unknown.join(", "),
            experiments::ALL.join(", ")
        );
        std::process::exit(2);
    }
}
