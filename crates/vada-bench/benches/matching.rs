//! Matcher scaling: schema matching vs attribute count, instance matching
//! vs row count.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_common::{Schema, Value};
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_match::{
    instance_match, schema_match, ContextColumn, InstanceMatchConfig, SchemaMatchConfig,
};

fn wide_schema(name: &str, attrs: usize, prefix: &str) -> Schema {
    let names: Vec<String> = (0..attrs).map(|i| format!("{prefix}_{i}")).collect();
    Schema::all_str(name, &names.iter().map(|s| s.as_str()).collect::<Vec<_>>())
}

fn bench_schema_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching/schema_vs_attrs");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for attrs in [8usize, 32, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(attrs), &attrs, |b, &attrs| {
            let src = wide_schema("src", attrs, "source_column");
            let tgt = wide_schema("tgt", attrs, "target_field");
            let cfg = SchemaMatchConfig::default();
            b.iter(|| schema_match(&cfg, &src, &tgt).len());
        });
    }
    group.finish();
}

fn bench_instance_match(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching/instance_vs_rows");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for props in [200usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(props), &props, |b, &props| {
            let s = Scenario::generate(ScenarioConfig {
                universe: UniverseConfig { properties: props, seed: 1 },
                ..Default::default()
            });
            let columns: Vec<ContextColumn> = vec![
                ContextColumn::from_relation(&s.address, "street", "street"),
                ContextColumn::from_relation(&s.address, "postcode", "postcode"),
                ContextColumn {
                    tgt_attr: "bedrooms".into(),
                    values: (1..=6i64).map(|v| Value::str(v.to_string())).collect(),
                },
            ];
            let cfg = InstanceMatchConfig::default();
            b.iter(|| instance_match(&cfg, &s.rightmove, &columns).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schema_match, bench_instance_match);
criterion_main!(benches);
