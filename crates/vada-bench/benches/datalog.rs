//! Datalog engine scaling: semi-naive transitive closure, joins and
//! stratified negation as the fact count grows.

use std::time::Duration;

use vada_bench::par_group;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_common::tuple;
use vada_datalog::{parse_program, Database, Engine};

fn chain_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        db.insert("edge", tuple![i as i64, (i + 1) as i64]);
        // add branching so the closure is not a straight line
        if i % 7 == 0 {
            db.insert("edge", tuple![i as i64, ((i + 3) % (n + 1)) as i64]);
        }
    }
    db
}

fn bench_transitive_closure(c: &mut Criterion) {
    let program =
        parse_program("tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).").unwrap();
    let mut group = c.benchmark_group(par_group("datalog/transitive_closure"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [50usize, 100, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let db = chain_db(n);
            b.iter(|| {
                Engine::default()
                    .run(&program, db.clone())
                    .expect("tc evaluates")
                    .facts("tc")
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_join_pipeline(c: &mut Criterion) {
    let program = parse_program(
        "j(A, C, E) :- r(A, B), s(B, C), t(C, D), D > 10, E = D * 2.",
    )
    .unwrap();
    let mut group = c.benchmark_group(par_group("datalog/join_pipeline"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [200usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut db = Database::new();
            for i in 0..n as i64 {
                db.insert("r", tuple![i, i % 97]);
                db.insert("s", tuple![i % 97, i % 31]);
                db.insert("t", tuple![i % 31, i % 50]);
            }
            b.iter(|| {
                Engine::default()
                    .run(&program, db.clone())
                    .expect("join evaluates")
                    .facts("j")
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_negation(c: &mut Criterion) {
    let program = parse_program(
        "node(X) :- edge(X, _). node(Y) :- edge(_, Y). \
         reach(X, Y) :- edge(X, Y). reach(X, Z) :- reach(X, Y), edge(Y, Z). \
         noreach(X, Y) :- node(X), node(Y), not reach(X, Y).",
    )
    .unwrap();
    let mut group = c.benchmark_group(par_group("datalog/stratified_negation"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [30usize, 60, 120] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let db = chain_db(n);
            b.iter(|| {
                Engine::default()
                    .run(&program, db.clone())
                    .expect("negation evaluates")
                    .facts("noreach")
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_aggregates(c: &mut Criterion) {
    let program = parse_program("agg(G, count(V), sum(V), avg(V)) :- item(G, V).").unwrap();
    let mut group = c.benchmark_group(par_group("datalog/aggregates"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [1000usize, 10_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut db = Database::new();
            for i in 0..n as i64 {
                db.insert("item", tuple![i % 100, i]);
            }
            b.iter(|| {
                Engine::default()
                    .run(&program, db.clone())
                    .expect("aggregate evaluates")
                    .facts("agg")
                    .len()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transitive_closure,
    bench_join_pipeline,
    bench_negation,
    bench_aggregates
);
criterion_main!(benches);
