//! Incremental vs full re-derivation: an N-row base with a k-row delta,
//! k ≪ N. The full path re-runs the engine over base+delta from scratch;
//! the incremental path feeds only the delta through a persistent
//! [`IncrementalSession`]. Same program, same output (the differential
//! suites pin byte-identity); only the work differs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_bench::par_group;
use vada_common::{tuple, Tuple};
use vada_datalog::incremental::IncrementalSession;
use vada_datalog::{parse_program, Database, Engine, EngineConfig};

/// The mapping-shaped program the pipeline actually runs: a two-source
/// union head plus a filtered join chain.
const PROGRAM: &str = r#"
    all(X, P) :- a(X, P).
    all(X, P) :- b(X, P).
    picked(X, P) :- a(X, P), k(X).
    wide(X, P, Q) :- picked(X, P), w(P, Q).
"#;

fn base_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n as i64 {
        db.insert("a", tuple![i % 997, i]);
        db.insert("b", tuple![i % 631, i + 10_000_000]);
        if i % 3 == 0 {
            db.insert("k", tuple![i % 997]);
        }
        db.insert("w", tuple![i, i * 2]);
    }
    db
}

/// `k` delta facts for `a`, unique per `round` so repeated bench
/// iterations keep doing real (non-duplicate) work.
fn delta(k: usize, round: usize) -> Vec<(String, Tuple)> {
    (0..k as i64)
        .map(|j| {
            let v = 20_000_000 + (round as i64) * k as i64 + j;
            ("a".to_string(), tuple![v % 997, v])
        })
        .collect()
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let program = parse_program(PROGRAM).unwrap();
    let mut group = c.benchmark_group(par_group("datalog/incremental_vs_full"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    const K: usize = 64;
    for n in [5_000usize, 20_000] {
        // full: re-derive everything from the grown base
        group.bench_with_input(BenchmarkId::new("full", n), &n, |bench, &n| {
            let mut db = base_db(n);
            for (p, t) in delta(K, 0) {
                db.insert(&p, t);
            }
            let engine = Engine::new(EngineConfig::default());
            bench.iter(|| {
                engine
                    .run(&program, db.clone())
                    .expect("full run evaluates")
                    .total_facts()
            });
        });
        // incremental: k-fact deltas through a persistent session
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |bench, &n| {
            let mut session =
                IncrementalSession::new(EngineConfig::default(), PROGRAM).unwrap();
            session.run_full(base_db(n)).unwrap();
            let mut round = 0usize;
            bench.iter(|| {
                round += 1;
                session
                    .apply(delta(K, round))
                    .expect("delta applies")
                    .total_facts()
            });
        });
        // retraction: retract k base rows through the counting path, then
        // re-apply them so every iteration does real deletion work against
        // a full-size base (the measured pair stays O(k) either way)
        group.bench_with_input(BenchmarkId::new("retract+reapply", n), &n, |bench, &n| {
            let mut session =
                IncrementalSession::new(EngineConfig::default(), PROGRAM).unwrap();
            session.run_full(base_db(n)).unwrap();
            let rows: Vec<(String, Tuple)> = (0..K as i64)
                .map(|i| ("a".to_string(), tuple![i % 997, i]))
                .collect();
            bench.iter(|| {
                session.retract(rows.clone()).expect("retraction applies");
                let out = session.last_outcome().expect("retract records an outcome");
                assert_eq!(out.removed_facts, K, "retraction must hit live rows");
                session.apply(rows.clone()).expect("re-apply succeeds").total_facts()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_vs_full);
criterion_main!(benches);
