//! End-to-end pipeline scaling: the full pay-as-you-go wrangle vs source
//! size, plus the bootstrap-only slice.

use std::time::Duration;

use vada_bench::par_group;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_bench::paygo::{run_paygo, PaygoConfig};
use vada_core::Wrangler;
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};

fn scenario_cfg(props: usize) -> ScenarioConfig {
    ScenarioConfig {
        universe: UniverseConfig { properties: props, seed: 1 },
        ..Default::default()
    }
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group(par_group("pipeline/bootstrap"));
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    for props in [100usize, 300, 800] {
        group.bench_with_input(BenchmarkId::from_parameter(props), &props, |b, &props| {
            let s = Scenario::generate(scenario_cfg(props));
            b.iter(|| {
                let mut w = Wrangler::new();
                w.add_source(s.rightmove.clone());
                w.add_source(s.onthemarket.clone());
                w.add_source(s.deprivation.clone());
                w.set_target(target_schema());
                w.run().expect("bootstrap");
                w.result().expect("result").len()
            });
        });
    }
    group.finish();
}

fn bench_full_paygo(c: &mut Criterion) {
    let mut group = c.benchmark_group(par_group("pipeline/full_paygo"));
    group.sample_size(10).measurement_time(Duration::from_secs(8));
    for props in [100usize, 300] {
        group.bench_with_input(BenchmarkId::from_parameter(props), &props, |b, &props| {
            let cfg = PaygoConfig {
                scenario: scenario_cfg(props),
                feedback_budget: 40,
                ..Default::default()
            };
            b.iter(|| run_paygo(&cfg).steps.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bootstrap, bench_full_paygo);
criterion_main!(benches);
