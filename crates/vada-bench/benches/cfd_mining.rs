//! CFD learner scaling: rows × LHS size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_bench::par_group;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_quality::{learn_cfds, CfdLearnConfig};

fn bench_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group(par_group("cfd/rows"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for props in [200usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(props), &props, |b, &props| {
            let s = Scenario::generate(ScenarioConfig {
                universe: UniverseConfig { properties: props, seed: 1 },
                ..Default::default()
            });
            let cfg = CfdLearnConfig::default();
            b.iter(|| learn_cfds(&cfg, &s.address).len());
        });
    }
    group.finish();
}

fn bench_lhs_size(c: &mut Criterion) {
    let mut group = c.benchmark_group(par_group("cfd/max_lhs"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 1000, seed: 1 },
        ..Default::default()
    });
    for max_lhs in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(max_lhs), &max_lhs, |b, &max_lhs| {
            let cfg = CfdLearnConfig { max_lhs, ..Default::default() };
            b.iter(|| learn_cfds(&cfg, &s.address).len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rows, bench_lhs_size);
criterion_main!(benches);
