//! AHP weight derivation vs matrix size.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_context::PairwiseMatrix;

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("ahp/solve");
    group.sample_size(20).measurement_time(Duration::from_secs(2));
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let names: Vec<String> = (0..n).map(|i| format!("c{i}")).collect();
            let mut m = PairwiseMatrix::new(names.clone()).expect("criteria valid");
            for i in 0..n {
                for j in (i + 1)..n {
                    let scale = 1.0 + ((i + j) % 8) as f64;
                    m.set(&names[i], &names[j], scale).expect("valid pair");
                }
            }
            b.iter(|| m.solve().weights.len());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solve);
criterion_main!(benches);
