//! Sharded vs monolithic knowledge-base scans: the same blocking scan run
//! as one monolithic pass and as one scheduling unit per shard (the
//! blocking-key partitioner co-locates blocks, the ordered merge restores
//! canonical output). The outputs are byte-identical — the differential
//! suites pin that — so the benchmark isolates pure scheduling cost/win.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_bench::par_group;
use vada_common::{HashPartitioner, Parallelism, Relation, Schema, Sharding, Tuple, Value};
use vada_fusion::{block_by_keys_sharded, block_by_keys_with};
use vada_kb::ShardedRelation;

fn listings(n: usize) -> Relation {
    let mut rel = Relation::empty(Schema::all_str("listings", &["street", "price", "postcode"]));
    for i in 0..n {
        let postcode = if i % 29 == 0 {
            Value::Null
        } else {
            Value::str(format!("M{} {}AA", i % 97, i % 5))
        };
        rel.push(Tuple::new(vec![
            Value::str(format!("{} high st", i / 3)),
            Value::str(format!("{}", 100_000 + i * 7)),
            postcode,
        ]))
        .unwrap();
    }
    rel
}

fn bench_sharded_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group(par_group("kb/sharded_scan"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let par = Parallelism::from_env();
    for n in [10_000usize, 40_000] {
        let rel = listings(n);
        group.bench_with_input(BenchmarkId::new("block_monolithic", n), &n, |b, _| {
            b.iter(|| block_by_keys_with(&rel, &["postcode"], par).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("block_sharded4", n), &n, |b, _| {
            b.iter(|| {
                block_by_keys_sharded(&rel, &["postcode"], Sharding::Shards(4), par).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("partition4", n), &n, |b, _| {
            b.iter(|| ShardedRelation::partition(&rel, &HashPartitioner, 4, par).unwrap());
        });
        let sharded = ShardedRelation::partition(&rel, &HashPartitioner, 4, par).unwrap();
        group.bench_with_input(BenchmarkId::new("merge4", n), &n, |b, _| {
            b.iter(|| sharded.merge());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sharded_scan);
criterion_main!(benches);
