//! Quality-metric computation scaling: violation detection and
//! reference-driven repair.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_common::{Relation, Tuple, Value};
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_quality::{
    consistency, detect_violations, learn_cfds, repair_with_reference, CfdLearnConfig,
    RepairConfig,
};

fn raw_result(props: usize) -> (Scenario, Relation) {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: props, seed: 1 },
        ..Default::default()
    });
    let mut rel = Relation::empty(target_schema());
    for t in s.rightmove.iter() {
        rel.push(Tuple::new(vec![
            t[4].clone(),
            t[5].clone(),
            t[1].clone(),
            t[2].clone(),
            t[3].clone(),
            t[0].clone(),
            Value::Null,
        ]))
        .expect("arity 7");
    }
    (s, rel)
}

fn bench_violations(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/violation_detection");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for props in [200usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(props), &props, |b, &props| {
            let (s, rel) = raw_result(props);
            let cfds = learn_cfds(&CfdLearnConfig::default(), &s.address);
            b.iter(|| detect_violations(&rel, &cfds).len());
        });
    }
    group.finish();
}

fn bench_consistency(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/consistency_metric");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let (s, rel) = raw_result(1000);
    let cfds = learn_cfds(&CfdLearnConfig::default(), &s.address);
    group.bench_function("1000_rows", |b| {
        b.iter(|| consistency(&rel, &cfds));
    });
    group.finish();
}

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("quality/repair");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for props in [200usize, 1000] {
        group.bench_with_input(BenchmarkId::from_parameter(props), &props, |b, &props| {
            let (s, rel) = raw_result(props);
            let cfds = learn_cfds(&CfdLearnConfig::default(), &s.address);
            b.iter(|| {
                let mut fresh = rel.clone();
                repair_with_reference(
                    &RepairConfig::default(),
                    &mut fresh,
                    &cfds,
                    &s.address,
                    Some(("street", "postcode")),
                )
                .total()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_violations, bench_consistency, bench_repair);
criterion_main!(benches);
