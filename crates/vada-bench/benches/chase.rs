//! Existential-rule (skolem chase) scaling: value invention per frontier
//! and nested invention up to the depth guard.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_bench::par_group;
use vada_common::tuple;
use vada_datalog::{parse_program, Database, Engine, EngineConfig};

fn bench_flat_invention(c: &mut Criterion) {
    // one invented owner per property
    let program = parse_program("owner(X, Z) :- prop(X). owned(Z) :- owner(_, Z).").unwrap();
    let mut group = c.benchmark_group(par_group("chase/flat_invention"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [1000usize, 10_000, 40_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut db = Database::new();
            for i in 0..n as i64 {
                db.insert("prop", tuple![i]);
            }
            b.iter(|| {
                Engine::default()
                    .run(&program, db.clone())
                    .expect("chase terminates")
                    .facts("owned")
                    .len()
            });
        });
    }
    group.finish();
}

fn bench_nested_invention(c: &mut Criterion) {
    // each invented value feeds the rule again; the depth guard bounds it
    let program = parse_program(
        "person(X) :- seed(X). parent(X, Z) :- person(X). person(Z) :- parent(_, Z).",
    )
    .unwrap();
    let mut group = c.benchmark_group(par_group("chase/nested_invention_depth"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for depth in [4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut db = Database::new();
            for i in 0..50i64 {
                db.insert("seed", tuple![i]);
            }
            let engine = Engine::new(EngineConfig {
                max_skolem_depth: depth,
                ..Default::default()
            });
            b.iter(|| {
                // the run intentionally hits the guard at the configured
                // depth: we measure invention throughput up to the bound
                let _ = engine.run(&program, db.clone());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flat_invention, bench_nested_invention);
criterion_main!(benches);
