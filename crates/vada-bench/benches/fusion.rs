//! Duplicate detection & fusion scaling, and the value of blocking.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vada_bench::par_group;
use vada_common::{Parallelism, Relation, Schema, Tuple, Value};
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_fusion::{
    cluster_relation, cluster_relation_with, fuse_clusters, ClusterConfig, FieldKind, FieldSpec,
    Survivorship,
};

fn dirty_union(props: usize) -> Relation {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: props, seed: 1 },
        source_fraction: 0.8,
        duplicate_rate: 0.1,
        ..Default::default()
    });
    // union both sources into one relation (column order normalised)
    let mut rel = Relation::empty(Schema::all_str(
        "union",
        &["price", "street", "postcode", "bedrooms"],
    ));
    for t in s.rightmove.iter().chain(s.onthemarket.iter()) {
        rel.push(Tuple::new(vec![
            t[0].clone(),
            t[1].clone(),
            t[2].clone(),
            t[3].clone(),
        ]))
        .expect("arity 4");
    }
    rel
}

fn spec() -> Vec<FieldSpec> {
    vec![
        FieldSpec { col: 0, weight: 1.0, kind: FieldKind::Numeric },
        FieldSpec { col: 1, weight: 3.0, kind: FieldKind::Text },
        FieldSpec { col: 2, weight: 2.0, kind: FieldKind::Exact },
        FieldSpec { col: 3, weight: 1.0, kind: FieldKind::Numeric },
    ]
}

fn bench_clustering(c: &mut Criterion) {
    let mut group = c.benchmark_group(par_group("fusion/cluster_with_blocking"));
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for props in [200usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(props), &props, |b, &props| {
            let rel = dirty_union(props);
            let cfg = ClusterConfig {
                block_keys: vec!["postcode".into()],
                fields: spec(),
                threshold: 0.9,
            };
            b.iter(|| cluster_relation(&cfg, &rel).expect("clusters").len());
        });
    }
    group.finish();
}

fn bench_blocking_ablation(c: &mut Criterion) {
    // blocking on postcode vs a degenerate single block (the first char of
    // street) — shows why blocking matters
    let mut group = c.benchmark_group(par_group("fusion/blocking_ablation_1000"));
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let rel = dirty_union(1000);
    for (label, key) in [("postcode_block", "postcode"), ("no_real_block", "bedrooms")] {
        group.bench_function(label, |b| {
            let cfg = ClusterConfig {
                block_keys: vec![key.to_string()],
                fields: spec(),
                threshold: 0.9,
            };
            b.iter(|| cluster_relation(&cfg, &rel).expect("clusters").len());
        });
    }
    group.finish();
}

fn bench_pairwise_parallel(c: &mut Criterion) {
    // the acceptance gauge for the parallel substrate: pairwise scoring on
    // a ~10k-row dirty union at 1 vs 4 workers; the t4 series should run
    // ≥1.5× faster than t1 on a 4-core machine, with identical clusters
    let mut group = c.benchmark_group("fusion/pairwise_10k");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let rel = dirty_union(6250); // two 80% sources ≈ 10k rows
    let cfg = ClusterConfig {
        block_keys: vec!["postcode".into()],
        fields: spec(),
        threshold: 0.9,
    };
    let baseline = cluster_relation_with(&cfg, &rel, Parallelism::Sequential).expect("clusters");
    for par in [Parallelism::Sequential, Parallelism::Threads(2), Parallelism::Threads(4)] {
        // determinism spot-check before timing: identical clusters (full
        // vectors, not counts) at every level
        assert_eq!(
            cluster_relation_with(&cfg, &rel, par).expect("clusters"),
            baseline,
            "{par:?} diverged from sequential clustering"
        );
        group.bench_function(format!("t{}", par.workers()), |b| {
            b.iter(|| cluster_relation_with(&cfg, &rel, par).expect("clusters").len());
        });
    }
    group.finish();
}

fn bench_survivorship(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion/survivorship_1000");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let rel = dirty_union(1000);
    let cfg = ClusterConfig {
        block_keys: vec!["postcode".into()],
        fields: spec(),
        threshold: 0.9,
    };
    let clusters = cluster_relation(&cfg, &rel).expect("clusters");
    let trust: Vec<f64> = (0..rel.len()).map(|i| (i % 10) as f64 / 10.0).collect();
    for rule in [Survivorship::MostComplete, Survivorship::Majority, Survivorship::TrustWeighted] {
        group.bench_function(format!("{rule:?}"), |b| {
            b.iter(|| {
                fuse_clusters(&rel, &clusters, rule, Some(&trust))
                    .expect("fusion")
                    .1
                    .duplicates_removed()
            });
        });
    }
    group.finish();
}

fn bench_value_normalisation(c: &mut Criterion) {
    // guard against accidental regressions in the hot Value::cmp path used
    // by clustering keys
    let mut group = c.benchmark_group("fusion/value_sort_100k");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    let mut values: Vec<Value> = Vec::new();
    for i in 0..100_000i64 {
        values.push(match i % 3 {
            0 => Value::Int(i),
            1 => Value::Float(i as f64 / 3.0),
            _ => Value::str(format!("v{i}")),
        });
    }
    group.bench_function("sort_mixed", |b| {
        b.iter(|| {
            let mut v = values.clone();
            v.sort();
            v.len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_clustering,
    bench_blocking_ablation,
    bench_pairwise_parallel,
    bench_survivorship,
    bench_value_normalisation
);
criterion_main!(benches);
