//! Attribute correspondences — the output of matchers.

use std::fmt;

/// A scored correspondence between a source attribute and a target
/// attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Correspondence {
    /// Source relation name.
    pub src_rel: String,
    /// Source attribute name.
    pub src_attr: String,
    /// Target attribute name.
    pub tgt_attr: String,
    /// Confidence in `[0, 1]`.
    pub score: f64,
    /// Which matcher produced it (`schema`, `instance`, `combined`).
    pub matcher: String,
    /// Human-readable evidence summary for the trace.
    pub evidence: String,
}

impl Correspondence {
    /// Key identifying the attribute pair regardless of score.
    pub fn pair_key(&self) -> (String, String, String) {
        (
            self.src_rel.clone(),
            self.src_attr.clone(),
            self.tgt_attr.clone(),
        )
    }
}

impl fmt::Display for Correspondence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{} ~ {} ({:.2}, {})",
            self.src_rel, self.src_attr, self.tgt_attr, self.score, self.matcher
        )
    }
}

/// Keep only the best-scoring correspondence per (source attribute, target
/// attribute) pair.
pub fn dedup_best(mut all: Vec<Correspondence>) -> Vec<Correspondence> {
    all.sort_by(|a, b| {
        a.pair_key()
            .cmp(&b.pair_key())
            .then(b.score.total_cmp(&a.score))
    });
    all.dedup_by_key(|c| c.pair_key());
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(src_attr: &str, tgt: &str, score: f64) -> Correspondence {
        Correspondence {
            src_rel: "s".into(),
            src_attr: src_attr.into(),
            tgt_attr: tgt.into(),
            score,
            matcher: "schema".into(),
            evidence: String::new(),
        }
    }

    #[test]
    fn dedup_keeps_best() {
        let out = dedup_best(vec![c("a", "x", 0.3), c("a", "x", 0.9), c("b", "x", 0.5)]);
        assert_eq!(out.len(), 2);
        let a = out.iter().find(|c| c.src_attr == "a").unwrap();
        assert_eq!(a.score, 0.9);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(c("price", "price", 0.915).to_string(), "s.price ~ price (0.92, schema)");
    }
}
