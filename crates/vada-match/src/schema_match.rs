//! Name-based schema matching.
//!
//! For every (source attribute, target attribute) pair, the score is the
//! maximum of:
//!
//! * normalised Levenshtein similarity of the normal forms,
//! * token Jaccard (camelCase/snake_case aware),
//! * q-gram Jaccard (typo/concatenation tolerant),
//! * a synonym-lexicon hit (`beds` → `bedrooms`, `details` →
//!   `description`, ...).
//!
//! Scores below `threshold` are dropped. This matcher's input dependency is
//! *schemas only* (paper Table 1, row "Schema Matching").

use vada_common::text::{levenshtein_sim, qgram_sim, token_jaccard, tokenize};
use vada_common::Schema;

use crate::correspondence::Correspondence;

/// Synonym lexicon: pairs of token sequences considered equivalent. A small
/// built-in vocabulary of the real-estate/listings domain; extend via
/// [`SchemaMatchConfig::extra_synonyms`].
const SYNONYMS: &[(&str, &str)] = &[
    ("beds", "bedrooms"),
    ("bed", "bedrooms"),
    ("asking price", "price"),
    ("cost", "price"),
    ("details", "description"),
    ("desc", "description"),
    ("property type", "type"),
    ("kind", "type"),
    ("street name", "street"),
    ("road", "street"),
    ("post code", "postcode"),
    ("zip", "postcode"),
    ("zipcode", "postcode"),
    ("town", "city"),
    ("crime", "crimerank"),
    ("crime rank", "crimerank"),
];

/// Configuration for the schema matcher.
#[derive(Debug, Clone)]
pub struct SchemaMatchConfig {
    /// Minimum score to report a correspondence.
    pub threshold: f64,
    /// Additional domain synonyms as `(a, b)` token-sequence pairs.
    pub extra_synonyms: Vec<(String, String)>,
    /// Score assigned to a synonym hit.
    pub synonym_score: f64,
}

impl Default for SchemaMatchConfig {
    fn default() -> Self {
        SchemaMatchConfig { threshold: 0.45, extra_synonyms: Vec::new(), synonym_score: 0.9 }
    }
}

fn token_phrase(name: &str) -> String {
    tokenize(name).join(" ")
}

fn synonym_hit(cfg: &SchemaMatchConfig, a: &str, b: &str) -> bool {
    let pa = token_phrase(a);
    let pb = token_phrase(b);
    let hits = |x: &str, y: &str| {
        SYNONYMS
            .iter()
            .any(|(s, t)| (*s == x && *t == y) || (*s == y && *t == x))
            || cfg
                .extra_synonyms
                .iter()
                .any(|(s, t)| (s == x && t == y) || (s == y && t == x))
    };
    hits(&pa, &pb)
}

/// Score one attribute-name pair.
pub fn name_similarity(cfg: &SchemaMatchConfig, a: &str, b: &str) -> (f64, &'static str) {
    let pa = token_phrase(a);
    let pb = token_phrase(b);
    if pa == pb {
        return (1.0, "exact");
    }
    if synonym_hit(cfg, a, b) {
        return (cfg.synonym_score, "synonym");
    }
    let lev = levenshtein_sim(&pa, &pb);
    let tok = token_jaccard(a, b);
    let qg = qgram_sim(&pa, &pb);
    let (best, kind) = [(lev, "levenshtein"), (tok, "token"), (qg, "qgram")]
        .into_iter()
        .max_by(|x, y| x.0.total_cmp(&y.0))
        .expect("non-empty");
    (best, kind)
}

/// Match a source schema against the target schema.
pub fn schema_match(
    cfg: &SchemaMatchConfig,
    src: &Schema,
    tgt: &Schema,
) -> Vec<Correspondence> {
    let mut out = Vec::new();
    for sa in src.attributes() {
        for ta in tgt.attributes() {
            let (score, kind) = name_similarity(cfg, &sa.name, &ta.name);
            if score >= cfg.threshold {
                out.push(Correspondence {
                    src_rel: src.name.clone(),
                    src_attr: sa.name.clone(),
                    tgt_attr: ta.name.clone(),
                    score,
                    matcher: "schema".into(),
                    evidence: format!("{kind} similarity {score:.2}"),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::Schema;

    fn cfg() -> SchemaMatchConfig {
        SchemaMatchConfig::default()
    }

    fn best_target(corrs: &[Correspondence], src_attr: &str) -> Option<String> {
        corrs
            .iter()
            .filter(|c| c.src_attr == src_attr)
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .map(|c| c.tgt_attr.clone())
    }

    #[test]
    fn identical_names_match_perfectly() {
        let (s, kind) = name_similarity(&cfg(), "price", "price");
        assert_eq!(s, 1.0);
        assert_eq!(kind, "exact");
        // case/underscore variants too
        assert_eq!(name_similarity(&cfg(), "Post_Code", "post code").0, 1.0);
    }

    #[test]
    fn synonyms_hit() {
        assert_eq!(name_similarity(&cfg(), "beds", "bedrooms").1, "synonym");
        assert_eq!(name_similarity(&cfg(), "details", "description").1, "synonym");
        assert_eq!(name_similarity(&cfg(), "asking_price", "price").1, "synonym");
    }

    #[test]
    fn paper_scenario_varied_names_resolve() {
        let src = Schema::all_str(
            "onthemarket",
            &["asking_price", "street_name", "post_code", "beds", "property_type", "details"],
        );
        let tgt = Schema::all_str(
            "property",
            &["type", "description", "street", "postcode", "bedrooms", "price", "crimerank"],
        );
        let corrs = schema_match(&cfg(), &src, &tgt);
        assert_eq!(best_target(&corrs, "asking_price").unwrap(), "price");
        assert_eq!(best_target(&corrs, "street_name").unwrap(), "street");
        assert_eq!(best_target(&corrs, "post_code").unwrap(), "postcode");
        assert_eq!(best_target(&corrs, "beds").unwrap(), "bedrooms");
        assert_eq!(best_target(&corrs, "property_type").unwrap(), "type");
        assert_eq!(best_target(&corrs, "details").unwrap(), "description");
    }

    #[test]
    fn unrelated_names_filtered_by_threshold() {
        let src = Schema::all_str("s", &["zzz_internal_id"]);
        let tgt = Schema::all_str("t", &["price"]);
        assert!(schema_match(&cfg(), &src, &tgt).is_empty());
    }

    #[test]
    fn extra_synonyms_extend_lexicon() {
        let mut c = cfg();
        c.extra_synonyms.push(("quid".into(), "price".into()));
        assert_eq!(name_similarity(&c, "quid", "price").1, "synonym");
    }

    #[test]
    fn scores_are_symmetric() {
        let c = cfg();
        for (a, b) in [("beds", "bedrooms"), ("street_name", "street"), ("post_code", "postcode")] {
            assert!((name_similarity(&c, a, b).0 - name_similarity(&c, b, a).0).abs() < 1e-12);
        }
    }
}
