//! Combining schema-level and instance-level match evidence.

use std::collections::HashMap;

use crate::correspondence::{dedup_best, Correspondence};

/// How the two evidence streams are merged.
#[derive(Debug, Clone)]
pub struct CombineConfig {
    /// Weight of instance evidence when both matchers scored a pair.
    pub instance_weight: f64,
    /// A pair seen by only one matcher keeps `solo_damping` × its score —
    /// corroboration is worth more than a single witness.
    pub solo_damping: f64,
    /// Drop combined scores below this.
    pub threshold: f64,
}

impl Default for CombineConfig {
    fn default() -> Self {
        CombineConfig { instance_weight: 0.6, solo_damping: 0.9, threshold: 0.35 }
    }
}

/// Merge schema and instance correspondences into combined ones.
pub fn combine(
    cfg: &CombineConfig,
    schema: &[Correspondence],
    instance: &[Correspondence],
) -> Vec<Correspondence> {
    let schema = dedup_best(schema.to_vec());
    let instance = dedup_best(instance.to_vec());
    type PairKey = (String, String, String);
    let mut by_pair: HashMap<PairKey, (Option<f64>, Option<f64>)> = HashMap::new();
    for c in &schema {
        by_pair.entry(c.pair_key()).or_default().0 = Some(c.score);
    }
    for c in &instance {
        by_pair.entry(c.pair_key()).or_default().1 = Some(c.score);
    }
    let mut out = Vec::new();
    let mut keys: Vec<_> = by_pair.keys().cloned().collect();
    keys.sort();
    for key in keys {
        let (s, i) = by_pair[&key];
        let (score, evidence) = match (s, i) {
            (Some(s), Some(i)) => (
                (1.0 - cfg.instance_weight) * s + cfg.instance_weight * i,
                format!("schema {s:.2} + instance {i:.2}"),
            ),
            (Some(s), None) => (s * cfg.solo_damping, format!("schema only {s:.2}")),
            (None, Some(i)) => (i * cfg.solo_damping, format!("instance only {i:.2}")),
            (None, None) => unreachable!("pair came from one of the lists"),
        };
        if score >= cfg.threshold {
            out.push(Correspondence {
                src_rel: key.0,
                src_attr: key.1,
                tgt_attr: key.2,
                score,
                matcher: "combined".into(),
                evidence,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(matcher: &str, src_attr: &str, tgt: &str, score: f64) -> Correspondence {
        Correspondence {
            src_rel: "s".into(),
            src_attr: src_attr.into(),
            tgt_attr: tgt.into(),
            score,
            matcher: matcher.into(),
            evidence: String::new(),
        }
    }

    #[test]
    fn corroborated_pairs_score_weighted_average() {
        let out = combine(
            &CombineConfig::default(),
            &[c("schema", "price", "price", 1.0)],
            &[c("instance", "price", "price", 0.5)],
        );
        assert_eq!(out.len(), 1);
        // 0.4*1.0 + 0.6*0.5 = 0.7
        assert!((out[0].score - 0.7).abs() < 1e-9);
        assert_eq!(out[0].matcher, "combined");
    }

    #[test]
    fn solo_pairs_are_damped() {
        let out = combine(
            &CombineConfig::default(),
            &[c("schema", "price", "price", 1.0)],
            &[],
        );
        assert!((out[0].score - 0.9).abs() < 1e-9);
    }

    #[test]
    fn corroboration_beats_contradiction() {
        // a wrong schema match (name collision) vs a right one corroborated
        // by instances: instance evidence should win the ranking
        let out = combine(
            &CombineConfig::default(),
            &[
                c("schema", "crime", "crimerank", 0.9),
                c("schema", "crime", "price", 0.55),
            ],
            &[c("instance", "crime", "crimerank", 0.8)],
        );
        let best = out
            .iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .unwrap();
        assert_eq!(best.tgt_attr, "crimerank");
    }

    #[test]
    fn threshold_prunes() {
        let out = combine(
            &CombineConfig::default(),
            &[c("schema", "a", "b", 0.36)],
            &[],
        );
        assert!(out.is_empty()); // 0.36 * 0.9 < 0.35
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let a = combine(
            &CombineConfig::default(),
            &[c("schema", "b", "y", 0.8), c("schema", "a", "x", 0.8)],
            &[],
        );
        assert_eq!(a[0].src_attr, "a");
        assert_eq!(a[1].src_attr, "b");
    }
}
