//! # vada-match
//!
//! The **Matching activity** (paper Table 1): deriving attribute
//! correspondences between source schemas and the target schema.
//!
//! Two matcher families with the input dependencies the paper lists:
//!
//! * [`schema_match`](schema_match::schema_match) needs only the *schemas*
//!   (attribute names): normalised edit distance, token overlap, q-gram
//!   similarity and a synonym lexicon.
//! * [`instance_match`](instance_match::instance_match) additionally needs
//!   *instances* for the target side — in VADA these come from the data
//!   context (reference/master/example relations bound to target
//!   attributes, paper §2.2): value-set overlap plus numeric-profile
//!   similarity.
//!
//! [`combine`](combine::combine) merges the two evidence streams; the
//! pay-as-you-go story of the demo is visible here as match precision
//! improving once instance evidence becomes available.

pub mod combine;
pub mod correspondence;
pub mod instance_match;
pub mod schema_match;

pub use combine::{combine, CombineConfig};
pub use correspondence::Correspondence;
pub use instance_match::{instance_match, ContextColumn, InstanceMatchConfig};
pub use schema_match::{schema_match, SchemaMatchConfig};
