//! Instance-based matching: correspondences from *data*, not names.
//!
//! Target-side instances come from the data context (paper §2.2): a
//! reference relation bound to target attributes supplies the value
//! population each source column is compared against. Two evidence kinds:
//!
//! * **value overlap** — Jaccard of the normalised string sets (sampled);
//! * **numeric profile** — when both columns are numeric-ish, similarity of
//!   their ranges and means.
//!
//! Input dependency (paper Table 1, "Instance Matching"): source *and*
//! target instances must be available.

use std::collections::HashSet;

use vada_common::text::normalize;
use vada_common::{Relation, Value};

use crate::correspondence::Correspondence;

/// A target attribute with instance values obtained from the data context.
#[derive(Debug, Clone)]
pub struct ContextColumn {
    /// Target attribute the values describe.
    pub tgt_attr: String,
    /// Values drawn from the context relation.
    pub values: Vec<Value>,
}

impl ContextColumn {
    /// Build from a context relation column bound to a target attribute.
    pub fn from_relation(rel: &Relation, ctx_attr: &str, tgt_attr: &str) -> ContextColumn {
        let idx = rel.schema().index_of(ctx_attr);
        let values = match idx {
            Some(i) => rel
                .iter()
                .map(|t| t[i].clone())
                .filter(|v| !v.is_null())
                .collect(),
            None => Vec::new(),
        };
        ContextColumn { tgt_attr: tgt_attr.to_string(), values }
    }
}

/// Configuration for the instance matcher.
#[derive(Debug, Clone)]
pub struct InstanceMatchConfig {
    /// Minimum score to report.
    pub threshold: f64,
    /// Sample cap per column (keeps matching subquadratic on big sources).
    pub sample: usize,
    /// Weight of value overlap vs numeric profile when both apply.
    pub overlap_weight: f64,
}

impl Default for InstanceMatchConfig {
    fn default() -> Self {
        InstanceMatchConfig { threshold: 0.3, sample: 500, overlap_weight: 0.7 }
    }
}

/// Basic numeric profile of a column.
#[derive(Debug, Clone, Copy, PartialEq)]
struct NumericProfile {
    numeric_fraction: f64,
    mean: f64,
    min: f64,
    max: f64,
}

fn profile(values: &[Value], sample: usize) -> NumericProfile {
    let mut nums = Vec::new();
    let mut total = 0usize;
    for v in values.iter().take(sample) {
        total += 1;
        let parsed = match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            _ => None,
        };
        if let Some(x) = parsed {
            nums.push(x);
        }
    }
    if nums.is_empty() || total == 0 {
        return NumericProfile { numeric_fraction: 0.0, mean: 0.0, min: 0.0, max: 0.0 };
    }
    let mean = nums.iter().sum::<f64>() / nums.len() as f64;
    let min = nums.iter().copied().fold(f64::INFINITY, f64::min);
    let max = nums.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    NumericProfile { numeric_fraction: nums.len() as f64 / total as f64, mean, min, max }
}

/// Range-overlap similarity of two numeric profiles.
fn profile_similarity(a: &NumericProfile, b: &NumericProfile) -> f64 {
    if a.numeric_fraction < 0.5 || b.numeric_fraction < 0.5 {
        return 0.0;
    }
    let lo = a.min.max(b.min);
    let hi = a.max.min(b.max);
    let overlap = (hi - lo).max(0.0);
    let span = (a.max.max(b.max) - a.min.min(b.min)).max(1e-9);
    let range_sim = overlap / span;
    let mean_scale = a.mean.abs().max(b.mean.abs()).max(1e-9);
    let mean_sim = 1.0 - ((a.mean - b.mean).abs() / mean_scale).min(1.0);
    0.5 * range_sim + 0.5 * mean_sim
}

fn value_set(values: &[Value], sample: usize) -> HashSet<String> {
    values
        .iter()
        .take(sample)
        .filter(|v| !v.is_null())
        .map(|v| normalize(&v.to_string()))
        .collect()
}

/// Match source columns against context-supplied target instances.
pub fn instance_match(
    cfg: &InstanceMatchConfig,
    src: &Relation,
    context: &[ContextColumn],
) -> Vec<Correspondence> {
    let mut out = Vec::new();
    for (i, sa) in src.schema().attributes().iter().enumerate() {
        let src_values: Vec<Value> = src
            .iter()
            .map(|t| t[i].clone())
            .filter(|v| !v.is_null())
            .collect();
        if src_values.is_empty() {
            continue;
        }
        let src_set = value_set(&src_values, cfg.sample);
        let src_profile = profile(&src_values, cfg.sample);
        for ctx in context {
            if ctx.values.is_empty() {
                continue;
            }
            let ctx_set = value_set(&ctx.values, cfg.sample);
            let inter = src_set.intersection(&ctx_set).count();
            let union = src_set.len() + ctx_set.len() - inter;
            let overlap = if union == 0 { 0.0 } else { inter as f64 / union as f64 };
            let ctx_profile = profile(&ctx.values, cfg.sample);
            let prof = profile_similarity(&src_profile, &ctx_profile);
            let score = if prof > 0.0 {
                cfg.overlap_weight * overlap + (1.0 - cfg.overlap_weight) * prof
            } else {
                overlap
            };
            if score >= cfg.threshold {
                out.push(Correspondence {
                    src_rel: src.name().to_string(),
                    src_attr: sa.name.clone(),
                    tgt_attr: ctx.tgt_attr.clone(),
                    score,
                    matcher: "instance".into(),
                    evidence: format!(
                        "value overlap {overlap:.2}, profile {prof:.2} over {} src / {} ctx values",
                        src_set.len(),
                        ctx_set.len()
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vada_common::{Schema, Tuple};

    fn rel(name: &str, attrs: &[&str], rows: Vec<Vec<&str>>) -> Relation {
        let mut r = Relation::empty(Schema::all_str(name, attrs));
        for row in rows {
            r.push(Tuple::new(row.into_iter().map(Value::str).collect::<Vec<_>>()))
                .unwrap();
        }
        r
    }

    #[test]
    fn value_overlap_finds_postcode_column() {
        let src = rel(
            "s",
            &["colA", "colB"],
            vec![
                vec!["M13 9PL", "red"],
                vec!["EH8 9AB", "blue"],
                vec!["OX1 3QD", "red"],
            ],
        );
        let ctx = vec![ContextColumn {
            tgt_attr: "postcode".into(),
            values: vec![
                Value::str("M13 9PL"),
                Value::str("EH8 9AB"),
                Value::str("LS1 1AA"),
            ],
        }];
        let corrs = instance_match(&InstanceMatchConfig::default(), &src, &ctx);
        assert_eq!(corrs.len(), 1);
        assert_eq!(corrs[0].src_attr, "colA");
        assert_eq!(corrs[0].tgt_attr, "postcode");
        assert!(corrs[0].score >= 0.3);
    }

    #[test]
    fn numeric_profile_matches_number_columns() {
        let src = rel(
            "s",
            &["mystery"],
            vec![vec!["1"], vec!["3"], vec!["5"], vec!["2"], vec!["4"]],
        );
        let ctx = vec![ContextColumn {
            tgt_attr: "bedrooms".into(),
            values: (1..=6).map(|i: i64| Value::str(i.to_string())).collect(),
        }];
        let corrs = instance_match(&InstanceMatchConfig::default(), &src, &ctx);
        assert_eq!(corrs.len(), 1, "numeric profile + overlap should match");
        assert_eq!(corrs[0].tgt_attr, "bedrooms");
    }

    #[test]
    fn disjoint_columns_do_not_match() {
        let src = rel("s", &["name"], vec![vec!["alice"], vec!["bob"]]);
        let ctx = vec![ContextColumn {
            tgt_attr: "postcode".into(),
            values: vec![Value::str("M13 9PL")],
        }];
        assert!(instance_match(&InstanceMatchConfig::default(), &src, &ctx).is_empty());
    }

    #[test]
    fn empty_inputs_are_quiet() {
        let src = rel("s", &["a"], vec![]);
        let ctx = vec![ContextColumn { tgt_attr: "x".into(), values: vec![] }];
        assert!(instance_match(&InstanceMatchConfig::default(), &src, &ctx).is_empty());
    }

    #[test]
    fn context_column_from_relation_binds_attr() {
        let r = rel("address", &["street", "postcode"], vec![vec!["12 high st", "M1 1AA"]]);
        let c = ContextColumn::from_relation(&r, "postcode", "postcode");
        assert_eq!(c.values, vec![Value::str("M1 1AA")]);
        let missing = ContextColumn::from_relation(&r, "nope", "x");
        assert!(missing.values.is_empty());
    }
}
