//! Property-based tests for the matching activity: name-similarity scoring
//! must be symmetric, thresholds must act as pure filters (raising one only
//! removes correspondences), and the value normal form the instance matcher
//! keys on must agree with the fusion/sharding blocking key — two values the
//! matcher considers identical always land in the same block and shard.

use proptest::prelude::*;

use vada_common::sharding::{blocking_key, KeyPartitioner, Partitioner};
use vada_common::text::normalize;
use vada_common::{tuple, Schema};
use vada_match::schema_match::name_similarity;
use vada_match::{combine, schema_match, CombineConfig, Correspondence, SchemaMatchConfig};

/// Attribute-name generator: lowercase words with the separators the
/// tokenizer understands (space / underscore), occasionally empty-ish.
const NAME: &str = "[a-z_ ]{0,12}";

fn pair_set(corrs: &[Correspondence]) -> std::collections::BTreeSet<(String, String, String)> {
    corrs.iter().map(|c| c.pair_key()).collect()
}

proptest! {
    #[test]
    fn name_similarity_is_symmetric(a in NAME, b in NAME) {
        let cfg = SchemaMatchConfig::default();
        let (sab, _) = name_similarity(&cfg, &a, &b);
        let (sba, _) = name_similarity(&cfg, &b, &a);
        prop_assert_eq!(sab, sba, "score({:?}, {:?}) asymmetric", a, b);
        prop_assert!((0.0..=1.0).contains(&sab), "score {} out of range", sab);
    }

    #[test]
    fn schema_match_threshold_is_monotone(
        src_names in proptest::collection::vec("[a-z_]{1,10}", 1..6),
        tgt_names in proptest::collection::vec("[a-z_]{1,10}", 1..6),
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let dedup = |names: Vec<String>| -> Vec<String> {
            let mut seen = std::collections::BTreeSet::new();
            names.into_iter().filter(|n| seen.insert(n.clone())).collect()
        };
        let src_names = dedup(src_names);
        let tgt_names = dedup(tgt_names);
        let src = Schema::all_str(
            "s", &src_names.iter().map(String::as_str).collect::<Vec<_>>());
        let tgt = Schema::all_str(
            "t", &tgt_names.iter().map(String::as_str).collect::<Vec<_>>());
        let at = |threshold: f64| {
            schema_match(&SchemaMatchConfig { threshold, ..Default::default() }, &src, &tgt)
        };
        let loose = at(lo);
        let strict = at(hi);
        // every reported score clears the bar it was asked for…
        for c in &loose {
            prop_assert!(c.score >= lo, "{:?} under threshold {}", c, lo);
        }
        // …and a higher bar reports a subset of a lower one
        let loose_pairs = pair_set(&loose);
        for key in pair_set(&strict) {
            prop_assert!(loose_pairs.contains(&key), "{key:?} appeared only at the stricter threshold");
        }
    }

    #[test]
    fn combine_threshold_is_monotone(
        scores in proptest::collection::vec(("[a-c]{1}", "[x-z]{1}", 0.0f64..1.0, 0u8..3), 0..8),
        lo in 0.0f64..1.0,
        hi in 0.0f64..1.0
    ) {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let mut schema_evi = Vec::new();
        let mut instance_evi = Vec::new();
        for (src_attr, tgt_attr, score, which) in &scores {
            let c = Correspondence {
                src_rel: "s".into(),
                src_attr: src_attr.clone(),
                tgt_attr: tgt_attr.clone(),
                score: *score,
                matcher: String::new(),
                evidence: String::new(),
            };
            // one stream, the other, or corroborated by both
            if *which != 1 { schema_evi.push(c.clone()); }
            if *which != 0 { instance_evi.push(c); }
        }
        let at = |threshold: f64| {
            combine(&CombineConfig { threshold, ..Default::default() }, &schema_evi, &instance_evi)
        };
        let loose = at(lo);
        let strict = at(hi);
        for c in &loose {
            prop_assert!(c.score >= lo, "{:?} under threshold {}", c, lo);
        }
        let loose_pairs = pair_set(&loose);
        for key in pair_set(&strict) {
            prop_assert!(loose_pairs.contains(&key), "{key:?} appeared only at the stricter threshold");
        }
        // corroboration invariant: combining never exceeds the best input
        for c in &loose {
            let best_in = schema_evi.iter().chain(&instance_evi)
                .filter(|e| e.pair_key() == c.pair_key())
                .map(|e| e.score)
                .fold(0.0f64, f64::max);
            prop_assert!(c.score <= best_in + 1e-12, "{:?} outscored its evidence {}", c, best_in);
        }
    }

    #[test]
    fn matcher_value_identity_agrees_with_blocking_key(
        a in "[ a-zA-Z0-9_.,-]{0,16}",
        b in "[ a-zA-Z0-9_.,-]{0,16}",
        shards in 1usize..6
    ) {
        // the instance matcher equates values by `normalize`; fusion blocking
        // and the key partitioner equate rows by `blocking_key`. The two
        // normal forms must be the same function, so co-matched values are
        // co-blocked and co-sharded by construction.
        let mut ka = String::new();
        let mut kb = String::new();
        // a non-null cell always keys (even when its normal form is empty:
        // such rows share the "" block rather than going singleton)
        prop_assert!(blocking_key(&tuple![a.as_str()], &[0], &mut ka));
        prop_assert!(blocking_key(&tuple![b.as_str()], &[0], &mut kb));
        prop_assert_eq!(&ka, &normalize(&a), "key text drifted for {:?}", a);
        let same_value = normalize(&a) == normalize(&b);
        prop_assert_eq!(same_value, ka == kb,
            "matcher identity and blocking key disagree on {:?} vs {:?}", a, b);
        if same_value {
            let part = KeyPartitioner { cols: vec![0] };
            prop_assert_eq!(
                part.shard_of(&tuple![a.as_str()], shards),
                part.shard_of(&tuple![b.as_str()], shards),
                "co-matched values landed in different shards"
            );
        }
    }
}
