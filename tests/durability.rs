//! Crash-recovery differential tests for the durable knowledge base
//! (`VADA_WAL`): every mutation is fsync'd to the write-ahead log before
//! it is applied, so truncating the log at **any** record boundary (a
//! crash after that record's fsync) and reopening must yield a catalog,
//! journal window, watermarks, and lineage byte-identical to the
//! uninterrupted run's state at that point — and a mid-record cut (a torn
//! tail) must recover exactly the preceding boundary, never misread bytes.
//! Snapshot compaction, the interrupted-compaction overlap, and O(change)
//! resume of sharded views and wrangling sessions are pinned alongside.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vada::{Evaluation, OrchestratorConfig, Parallelism, Sharding, Wrangler};
use vada_common::{tuple, AttrType, Relation, Schema, Tuple, Value};
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_kb::storage::{Wal, WAL_FILE};
use vada_kb::{ContextKind, KnowledgeBase, PairwiseStatement, ShardedStore, SyncMode};

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("vada-durability-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Fingerprint exactly what recovery promises to restore: the version,
/// the journal (lineage, watermarks, full retained window), per-aspect
/// versions, and every catalog relation byte for byte. Derived metadata
/// is deliberately absent — it is re-derived by wrangling.
fn fingerprint(kb: &KnowledgeBase) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "version={} lineage={} pruned={}\n",
        kb.version(),
        kb.journal().lineage(),
        kb.journal().pruned_through()
    ));
    for aspect in [
        "relations", "result", "intermediates", "target", "matches", "mappings", "selection",
        "cfds", "quality", "feedback", "user_context", "data_context", "staged",
    ] {
        out.push_str(&format!("aspect {aspect}={}\n", kb.aspect_version(aspect)));
    }
    for e in kb
        .drain_deltas_since(kb.journal().pruned_through())
        .expect("a journal serves its own pruned-through watermark")
    {
        out.push_str(&format!("{e:?}\n"));
    }
    for (name, kind, rel) in kb.catalog().entries() {
        out.push_str(&format!(
            "=== {name} [{}] {:?} ===\n{:?}\n",
            kind.tag(),
            rel.schema(),
            rel.tuples()
        ));
    }
    out
}

/// The byte offsets of the WAL's record boundaries (header first), read
/// back from the frame length fields alone — no decoding, so the scan
/// works on any prefix the truncation loop is about to produce.
fn record_boundaries(wal_bytes: &[u8]) -> Vec<usize> {
    let mut offsets = vec![8usize];
    let mut pos = 8usize;
    while wal_bytes.len() - pos >= 8 {
        let len = u32::from_le_bytes(wal_bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if wal_bytes.len() - pos - 8 < len {
            break;
        }
        pos += 8 + len;
        offsets.push(pos);
    }
    offsets
}

/// A pool of tuples for the mixed-type relation, exercising the value
/// codec's hard cases: extreme integers, infinities, embedded newlines,
/// NULs, quotes, and non-ASCII — everything but non-canonical floats
/// (`NaN`, `-0.0`), which encode canonically by design and are pinned in
/// the codec property suites instead.
fn adversarial_row(rng: &mut StdRng) -> Tuple {
    let strings = [
        "plain",
        "with\nnewline",
        "with\0nul",
        "\"quoted\", and, commas",
        "naïve — ünïcode",
        "",
    ];
    let ints = [i64::MIN, i64::MAX, 0, -1, 42];
    let floats = [f64::INFINITY, f64::NEG_INFINITY, 1.5, -f64::MAX, 0.0];
    Tuple::new(vec![
        Value::str(strings[rng.gen_range(0usize..strings.len())]),
        Value::Int(ints[rng.gen_range(0usize..ints.len())]),
        Value::Float(floats[rng.gen_range(0usize..floats.len())]),
    ])
}

fn mixed_schema(name: &str) -> Schema {
    Schema::new(
        name,
        [("s", AttrType::Str), ("i", AttrType::Int), ("f", AttrType::Float)],
    )
    .unwrap()
}

/// Apply one random single-event mutation to `kb`. Every arm journals
/// exactly one event, so WAL record `k` corresponds 1:1 to script step
/// `k` and the truncation loop can pair each boundary with the
/// fingerprint captured after that step.
fn random_mutation(kb: &mut KnowledgeBase, rng: &mut StdRng, step: usize) {
    match rng.gen_range(0usize..8) {
        // grown re-registration → monotone RowsAppended
        0 => {
            let mut grown = kb.relation("mixed").unwrap().clone();
            for _ in 0..rng.gen_range(1usize..3) {
                grown.push(adversarial_row(rng)).unwrap();
            }
            kb.register_source(grown);
        }
        // row-level retraction (kept non-empty for the other arms)
        1 if kb.relation("mixed").unwrap().len() > 2 => {
            let len = kb.relation("mixed").unwrap().len();
            kb.remove_rows("mixed", &[rng.gen_range(0usize..len)]).unwrap();
        }
        // in-place rewrite, tail or mid
        2 => {
            let len = kb.relation("mixed").unwrap().len();
            let row = if rng.gen_range(0usize..2) == 0 { len - 1 } else { rng.gen_range(0usize..len) };
            kb.update_source("mixed", &[(row, adversarial_row(rng))]).unwrap();
        }
        // a brand-new relation → RelationAdded (full payload in the WAL)
        3 => {
            let mut rel = Relation::empty(mixed_schema(&format!("extra{step}")));
            rel.push(adversarial_row(rng)).unwrap();
            kb.register_source(rel);
        }
        // same name, shuffled rows → RelationReplaced (full payload)
        4 => {
            let old = kb.relation("mixed").unwrap();
            let mut rows: Vec<Tuple> = old.tuples().to_vec();
            rows.reverse();
            rows.push(adversarial_row(rng));
            let rel = Relation::from_tuples(old.schema().clone(), rows).unwrap();
            kb.register_source(rel);
        }
        // metadata aspects: journalled as AspectChanged, state re-derived
        5 => kb.stage_document(format!("doc{step}"), "a\n1\n"),
        // result / intermediate relations persist like any other
        6 => {
            let mut rel = Relation::empty(mixed_schema("the_result"));
            rel.push(adversarial_row(rng)).unwrap();
            kb.put_result(rel);
        }
        _ => {
            let mut rel = Relation::empty(mixed_schema(&format!("inter{}", step % 3)));
            rel.push(adversarial_row(rng)).unwrap();
            kb.put_intermediate(rel);
        }
    }
}

/// The core differential: a randomized edit script against a durable KB,
/// then — from the surviving log bytes — a reopen at **every** record
/// boundary plus torn cuts inside every record, each compared
/// byte-for-byte against the state the uninterrupted run had at exactly
/// that point.
#[test]
fn truncation_at_every_record_boundary_recovers_that_exact_state() {
    for seed in [11u64, 23, 47] {
        let dir = tmpdir(&format!("boundary-{seed}"));
        let mut rng = StdRng::seed_from_u64(seed);

        let mut kb = KnowledgeBase::new();
        let mut base = Relation::empty(mixed_schema("mixed"));
        for _ in 0..3 {
            base.push(adversarial_row(&mut rng)).unwrap();
        }
        kb.register_source(base);
        kb.persist_to(&dir).unwrap();
        kb.storage_health().unwrap();

        // fingerprints[k] = state once the first k post-persist events are on disk
        let mut fingerprints = vec![fingerprint(&kb)];
        for step in 0..30 {
            let before = kb.version();
            random_mutation(&mut kb, &mut rng, step);
            assert_eq!(kb.version(), before + 1, "script steps must be single-event");
            fingerprints.push(fingerprint(&kb));
        }
        kb.storage_health().unwrap();
        drop(kb);

        let wal_path = dir.join(WAL_FILE);
        let full = std::fs::read(&wal_path).unwrap();
        let boundaries = record_boundaries(&full);
        assert_eq!(boundaries.len(), fingerprints.len(), "one WAL record per step");

        for (k, &cut) in boundaries.iter().enumerate() {
            // a crash right after record k's fsync
            std::fs::write(&wal_path, &full[..cut]).unwrap();
            let reopened = KnowledgeBase::open(&dir).unwrap();
            assert_eq!(
                fingerprint(&reopened),
                fingerprints[k],
                "seed {seed}: boundary {k} must recover the state at step {k}"
            );
            // torn tails inside the *next* record recover boundary k exactly
            if k + 1 < boundaries.len() {
                let next = boundaries[k + 1];
                for torn in [cut + 1, cut + 9, next - 1] {
                    std::fs::write(&wal_path, &full[..torn]).unwrap();
                    let reopened = KnowledgeBase::open(&dir).unwrap();
                    assert_eq!(
                        fingerprint(&reopened),
                        fingerprints[k],
                        "seed {seed}: torn cut at byte {torn} must fall back to boundary {k}"
                    );
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Compaction: when the journal window would prune, the log is folded
/// into a snapshot first. A reopen after compaction restores the full
/// state; restoring the *pre-compaction* log next to the new snapshot —
/// exactly what a crash between "snapshot renamed" and "log reset"
/// leaves — replays no stale records and recovers the checkpoint state.
#[test]
fn compaction_snapshots_and_survives_the_crash_window() {
    let dir = tmpdir("compaction");
    let mut kb = KnowledgeBase::with_journal_capacity(8);
    let mut rel = Relation::empty(mixed_schema("mixed"));
    rel.push(tuple!["a", 1i64, 1.5f64]).unwrap();
    kb.register_source(rel);
    kb.persist_to(&dir).unwrap();

    // fill the window exactly: no pruning, no compaction yet
    for i in 0..7 {
        kb.stage_document(format!("d{i}"), "a\n1\n");
    }
    assert_eq!(kb.journal().pruned_through(), 0);
    let pre_compaction = fingerprint(&kb);
    let old_log = std::fs::read(dir.join(WAL_FILE)).unwrap();

    // the next event would prune the window → compact first, then append
    kb.stage_document("overflow", "a\n1\n");
    assert_eq!(kb.journal().pruned_through(), 1, "window pruned after overflow");
    kb.storage_health().unwrap();
    let post_compaction = fingerprint(&kb);
    drop(kb);

    // the log was reset: only the overflow record survives in it
    let (_wal, records) = Wal::open(dir.join(WAL_FILE)).unwrap();
    assert_eq!(records.len(), 1, "compaction resets the log");

    let reopened = KnowledgeBase::open(&dir).unwrap();
    assert_eq!(fingerprint(&reopened), post_compaction);
    drop(reopened);

    // simulate the interrupted compaction: new snapshot + the old log
    std::fs::write(dir.join(WAL_FILE), &old_log).unwrap();
    let reopened = KnowledgeBase::open(&dir).unwrap();
    assert_eq!(
        fingerprint(&reopened),
        pre_compaction,
        "stale records at or below the snapshot version must be skipped"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Sharded views resume O(change) across a crash: the recovered journal
/// keeps its lineage and watermarks, so a store synced before the crash
/// sees `Noop` on the reopened base and routes (never rebuilds) the
/// first post-recovery edit.
#[test]
fn sharded_store_resumes_o_change_after_reopen() {
    let dir = tmpdir("shard-resume");
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 40, seed: 5 },
        ..Default::default()
    });
    let mut kb = KnowledgeBase::new();
    kb.register_source(s.rightmove.clone());
    kb.persist_to(&dir).unwrap();
    kb.register_source(s.deprivation.clone());

    let mut store = ShardedStore::new(Sharding::Shards(4));
    assert_eq!(store.sync(&kb).unwrap().mode, SyncMode::Rebuild);
    drop(kb);

    let mut kb = KnowledgeBase::open(&dir).unwrap();
    assert_eq!(
        store.sync(&kb).unwrap().mode,
        SyncMode::Noop,
        "unchanged reopened base must be a no-op for a synced store"
    );
    kb.remove_rows("rightmove", &[0]).unwrap();
    let report = store.sync(&kb).unwrap();
    assert_eq!(report.mode, SyncMode::Routed, "post-recovery edits must route");
    assert_eq!(report.routed_events, 1);
    for (name, _, rel) in kb.catalog().entries() {
        assert_eq!(store.view(name).unwrap().merge().tuples(), rel.tuples());
    }
    assert_eq!(store.stats().0, 1, "recovery must not force a rebuild");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Drive the full wrangling pipeline durably under every scheduling ×
/// sharding configuration, checkpoint the observable state at each
/// pipeline step, then crash and reopen at each of those watermarks: the
/// recovered state must be byte-identical every time, in every
/// configuration.
#[test]
fn wrangled_kb_recovers_byte_identically_across_the_config_matrix() {
    for parallelism in [Parallelism::Sequential, Parallelism::Threads(4)] {
        for sharding in [Sharding::Off, Sharding::Shards(4)] {
            let dir = tmpdir(&format!("matrix-{parallelism:?}-{sharding:?}"));
            let s = Scenario::generate(ScenarioConfig {
                universe: UniverseConfig { properties: 40, seed: 9 },
                ..Default::default()
            });
            let mut w = Wrangler::new();
            w.set_orchestrator_config(OrchestratorConfig {
                parallelism,
                sharding,
                evaluation: Evaluation::Incremental,
                ..OrchestratorConfig::default()
            });
            w.set_durability(vada::Durability::Wal(dir.clone())).unwrap();

            let mut watermarks = Vec::new();
            let checkpoint = |w: &Wrangler| (w.kb().version(), fingerprint(w.kb()));
            w.add_source(s.rightmove.clone());
            w.add_source(s.deprivation.clone());
            w.set_target(target_schema());
            w.run().expect("bootstrap succeeds");
            watermarks.push(checkpoint(&w));
            w.add_data_context(
                s.address.clone(),
                ContextKind::Reference,
                &[("street", "street"), ("postcode", "postcode")],
            )
            .unwrap();
            w.run().expect("context step succeeds");
            watermarks.push(checkpoint(&w));
            w.remove_source_rows("rightmove", &[1, 3]).unwrap();
            w.set_user_context(vec![PairwiseStatement {
                more_important: "completeness(crimerank)".into(),
                less_important: "completeness(bedrooms)".into(),
                strength: "strongly".into(),
            }]);
            w.run().expect("edit step succeeds");
            watermarks.push(checkpoint(&w));
            w.kb().storage_health().unwrap();
            drop(w);

            let wal_path = dir.join(WAL_FILE);
            let full = std::fs::read(&wal_path).unwrap();
            let boundaries = record_boundaries(&full);
            let (_wal, records) = Wal::open(&wal_path).unwrap();
            assert_eq!(boundaries.len(), records.len() + 1);

            for (version, expected) in &watermarks {
                // the boundary right after the record that produced `version`
                let k = records
                    .iter()
                    .position(|r| r.event.seq == *version)
                    .map(|i| i + 1)
                    .expect("every checkpoint version has a WAL record");
                std::fs::write(&wal_path, &full[..boundaries[k]]).unwrap();
                let reopened = KnowledgeBase::open(&dir).unwrap();
                assert_eq!(
                    &fingerprint(&reopened),
                    expected,
                    "{parallelism:?} × {sharding:?}: crash at v{version} must recover that state"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Re-wrangling a recovered knowledge base reproduces the pre-crash
/// result: the catalog survives the crash byte-identically, and the
/// derived metadata (matches, mappings, selections) is re-derived by the
/// pipeline — the paper's pay-as-you-go loop picks up where it left off.
#[test]
fn recovered_kb_rewrangles_to_the_same_result() {
    let dir = tmpdir("rewrangle");
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 40, seed: 13 },
        ..Default::default()
    });
    let mut w = Wrangler::new();
    w.set_durability(vada::Durability::Wal(dir.clone())).unwrap();
    w.add_source(s.rightmove.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap succeeds");
    let result_before: Vec<Tuple> = w.result().expect("result materialised").tuples().to_vec();
    drop(w);

    let kb = KnowledgeBase::open(&dir).unwrap();
    let mut w2 = Wrangler::with_kb(kb);
    // metadata is re-derived, not restored: the user re-states intent
    w2.set_target(target_schema());
    w2.run().expect("re-wrangle succeeds");
    assert_eq!(
        w2.result().expect("result re-materialised").tuples(),
        &result_before[..],
        "re-wrangling the recovered catalog must reproduce the result"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The `VADA_WAL=tmpdir` env default gives every wrangler its own WAL
/// subdirectory (no two wranglers may share a log), and an explicit
/// `Durability::Off` detaches cleanly.
#[test]
fn env_default_durability_knob_round_trips() {
    // from_env is consulted at construction; this test controls it via
    // the explicit setter to stay independent of the ambient environment
    let dir = tmpdir("knob");
    let mut w = Wrangler::new();
    w.set_durability(vada::Durability::Wal(dir.clone())).unwrap();
    assert_eq!(w.kb().durable_dir(), Some(dir.as_path()));
    w.add_source({
        let mut r = Relation::empty(mixed_schema("mixed"));
        r.push(tuple!["x", 7i64, 0.5f64]).unwrap();
        r
    });
    w.set_durability(vada::Durability::Off).unwrap();
    assert_eq!(w.kb().durable_dir(), None);
    // the files survive the detach and still reopen
    let kb = KnowledgeBase::open(&dir).unwrap();
    assert_eq!(kb.relation("mixed").unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
