//! Differential tests for the sharded knowledge-base store: every
//! pipeline entry point must produce output under `Sharding::Shards(n)`
//! that is byte-identical to `Sharding::Off` — same relations (the whole
//! catalog, not just the result), same fact insertion order, same trace
//! (modulo wall-clock durations) — at every parallelism level and
//! evaluation mode, including after journal-replayed append / remove /
//! update edits. This is the contract that makes the `VADA_SHARDS`
//! override safe to flip in production.

use std::sync::Arc;

use vada::{Evaluation, OrchestratorConfig, Parallelism, Sharding, Wrangler};
use vada_common::sharding::KeyPartitioner;
use vada_common::{csv, tuple, HashPartitioner};
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_kb::{ShardedRelation, ShardedStore, SyncMode};

/// The full configuration matrix the acceptance criteria pin.
fn matrix() -> Vec<(Sharding, Parallelism, Evaluation)> {
    let mut out = Vec::new();
    for sharding in [Sharding::Off, Sharding::Shards(4)] {
        for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
            for eval in [Evaluation::Full, Evaluation::Incremental] {
                out.push((sharding, par, eval));
            }
        }
    }
    out
}

/// Render everything observable about a wrangle: the trace's stable
/// fields, plus every catalog relation as one CSV section (insertion
/// order included).
fn observe(w: &Wrangler) -> (String, Vec<String>) {
    let mut trace = String::new();
    for entry in w.trace().entries() {
        trace.push_str(&format!(
            "#{} {} [{}] dep={} v{}->v{} writes={} {}\n",
            entry.step,
            entry.transducer,
            entry.activity,
            entry.input_dependency,
            entry.kb_version_before,
            entry.kb_version_after,
            entry.writes,
            entry.summary
        ));
    }
    let sections = w
        .kb()
        .catalog()
        .entries()
        .map(|(name, kind, rel)| {
            format!("=== {name} [{}] ===\n{}", kind.tag(), csv::write_relation(rel))
        })
        .collect();
    (trace, sections)
}

/// Mapping ids (`map<N>`) come from a process-global counter, so their
/// absolute numbers depend on how many wrangles ran earlier in this test
/// process. Ids allocate in strictly increasing order, and two equivalent
/// runs allocate the same number in the same event sequence — so ranking
/// the distinct ids numerically pairs the k-th allocated id of one run
/// with the k-th of the other, independent of where it first appears in
/// the observation. (First-seen ordering would not: catalog sections sort
/// by raw name, and `candidate_map12` vs `candidate_map7` sort
/// differently than their padded successors in a later run.)
fn map_id_ranks(s: &str) -> std::collections::BTreeMap<u64, usize> {
    let bytes = s.as_bytes();
    let mut ids: std::collections::BTreeSet<u64> = Default::default();
    let mut i = 0;
    while i < bytes.len() {
        if s[i..].starts_with("map") && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric()) {
            let start = i + 3;
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end > start {
                ids.insert(s[start..end].parse().unwrap());
                i = end;
                continue;
            }
        }
        i += s[i..].chars().next().unwrap().len_utf8();
    }
    ids.into_iter().enumerate().map(|(rank, id)| (id, rank)).collect()
}

/// Rewrite every `map<N>` to `map#<rank>` under the given ranking.
fn rewrite_map_ids(s: &str, ranks: &std::collections::BTreeMap<u64, usize>) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if s[i..].starts_with("map") && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric()) {
            let start = i + 3;
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end > start {
                let id: u64 = s[start..end].parse().unwrap();
                out.push_str(&format!("map#{}", ranks[&id]));
                i = end;
                continue;
            }
        }
        let c = s[i..].chars().next().unwrap();
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// Canonicalize a whole observation: rank-rewrite the mapping ids, then
/// sort the catalog sections by their rewritten headers so section order
/// no longer depends on the raw id digits.
fn canonicalize(trace: &str, sections: &[String]) -> String {
    let all = format!("{trace}{}", sections.join(""));
    let ranks = map_id_ranks(&all);
    let mut sections: Vec<String> =
        sections.iter().map(|s| rewrite_map_ids(s, &ranks)).collect();
    sections.sort();
    format!("{}{}", rewrite_map_ids(trace, &ranks), sections.join(""))
}

/// Drive the full pay-as-you-go pipeline (bootstrap, data context, user
/// context), then a journal-replayed edit phase (row removals, a tail
/// rewrite, a mid-relation rewrite, a grown re-registration) and a final
/// re-run — under one configuration of the matrix.
fn wrangle(sharding: Sharding, par: Parallelism, eval: Evaluation) -> String {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 90, seed: 23 },
        ..Default::default()
    });
    let mut w = Wrangler::new();
    w.set_orchestrator_config(OrchestratorConfig {
        sharding,
        parallelism: par,
        evaluation: eval,
        ..OrchestratorConfig::default()
    });
    w.add_source(s.rightmove.clone());
    w.add_source(s.onthemarket.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap succeeds");
    w.add_data_context(
        s.address.clone(),
        vada_kb::ContextKind::Reference,
        &[("street", "street"), ("postcode", "postcode")],
    )
    .expect("context registers");
    w.run().expect("context step succeeds");
    w.set_user_context(vec![vada_kb::PairwiseStatement {
        more_important: "completeness(crimerank)".into(),
        less_important: "completeness(bedrooms)".into(),
        strength: "strongly".into(),
    }]);
    w.run().expect("user-context step succeeds");

    // --- journal-replayed edit phase ---
    // row-level removals
    w.remove_source_rows("rightmove", &[2, 7, 11]).expect("removal applies");
    // a tail rewrite (replayable incrementally) and a mid rewrite (forces
    // the fallback) — equivalence must hold either way
    let n = w.kb().relation("rightmove").unwrap().len();
    let edited = |row: &vada_common::Tuple, price: &str| {
        let mut vals: Vec<vada_common::Value> = row.iter().cloned().collect();
        vals[0] = vada_common::Value::str(price);
        vada_common::Tuple::new(vals)
    };
    let tail_row = edited(&w.kb().relation("rightmove").unwrap().tuples()[n - 1], "275000");
    w.update_source_rows("rightmove", &[(n - 1, tail_row)]).expect("tail rewrite applies");
    let mid_row = edited(&w.kb().relation("onthemarket").unwrap().tuples()[1], "999999");
    w.update_source_rows("onthemarket", &[(1, mid_row)]).expect("mid rewrite applies");
    // a grown re-registration → monotone RowsAppended
    let mut grown = w.kb().relation("deprivation").unwrap().clone();
    grown.push(tuple!["ZZ99", "42"]).unwrap();
    w.add_source(grown);
    w.run().expect("edit re-run succeeds");

    let (trace, sections) = observe(&w);
    canonicalize(&trace, &sections)
}

#[test]
fn full_matrix_is_byte_identical_to_unsharded_sequential_full() {
    let baseline = wrangle(Sharding::Off, Parallelism::Sequential, Evaluation::Full);
    assert!(baseline.contains("=== property"), "pipeline materialised a result");
    for (sharding, par, eval) in matrix() {
        if (sharding, par, eval)
            == (Sharding::Off, Parallelism::Sequential, Evaluation::Full)
        {
            continue;
        }
        let got = wrangle(sharding, par, eval);
        assert_eq!(
            got, baseline,
            "{sharding:?} × {par:?} × {eval:?} diverged from Off × Sequential × Full"
        );
    }
}

#[test]
fn any_shard_count_partitions_and_merges_identically() {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 150, seed: 7 },
        ..Default::default()
    });
    let rel = &s.rightmove;
    let key_cols = vec![rel.schema().require("postcode").unwrap()];
    for shards in [2usize, 3, 4, 8, 16] {
        for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
            let hashed =
                ShardedRelation::partition(rel, &HashPartitioner, shards, par).unwrap();
            assert_eq!(hashed.merge().tuples(), rel.tuples(), "hash n={shards} {par:?}");
            let keyed = ShardedRelation::partition(
                rel,
                &KeyPartitioner { cols: key_cols.clone() },
                shards,
                par,
            )
            .unwrap();
            assert_eq!(keyed.merge().tuples(), rel.tuples(), "key n={shards} {par:?}");
        }
    }
}

/// The journal-routing half of the determinism guarantee, pinned directly
/// on the store: a scripted append / remove / update history syncs
/// O(change) (routed, no repartition) and every intermediate merged view
/// is byte-identical to the canonical relation.
#[test]
fn journal_replayed_edits_keep_the_store_byte_identical() {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 60, seed: 3 },
        ..Default::default()
    });
    let mut kb = vada_kb::KnowledgeBase::new();
    kb.register_source(s.rightmove.clone());
    kb.register_source(s.deprivation.clone());

    for partitioner in [
        Arc::new(HashPartitioner) as Arc<dyn vada_common::Partitioner + Send + Sync>,
        Arc::new(KeyPartitioner {
            cols: vec![s.rightmove.schema().require("postcode").unwrap()],
        }),
    ] {
        let mut store = ShardedStore::with_partitioner(Sharding::Shards(4), partitioner);
        assert_eq!(store.sync(&kb).unwrap().mode, SyncMode::Rebuild);

        let check = |store: &mut ShardedStore, kb: &vada_kb::KnowledgeBase| {
            let report = store.sync(kb).unwrap();
            assert_eq!(report.mode, SyncMode::Routed, "row-level edits must route");
            assert_eq!(report.repartitioned, 0, "row-level edits must not repartition");
            for (name, _, rel) in kb.catalog().entries() {
                assert_eq!(
                    store.view(name).unwrap().merge().tuples(),
                    rel.tuples(),
                    "merged view of `{name}` diverged"
                );
            }
        };

        // appends (grown re-registration)
        let mut grown = kb.relation("rightmove").unwrap().clone();
        grown.push(tuple!["300000", "9 new st", "M1 1AA", "3", "semi", "nice"]).unwrap();
        grown.push(tuple!["310000", "10 new st", "EH1 1AA", "2", "flat", "ok"]).unwrap();
        kb.register_source(grown);
        check(&mut store, &kb);

        // removals, duplicates-safe by position
        kb.remove_rows("rightmove", &[0, 5, 6]).unwrap();
        check(&mut store, &kb);

        // in-place rewrites: tail and mid
        let n = kb.relation("rightmove").unwrap().len();
        kb.update_source(
            "rightmove",
            &[(n - 1, tuple!["1", "rewritten tail", "ZZ1 1ZZ", "9", "x", "d1"])],
        )
        .unwrap();
        check(&mut store, &kb);
        kb.update_source(
            "rightmove",
            &[(1, tuple!["2", "rewritten mid", "M9 9AA", "1", "y", "d2"])],
        )
        .unwrap();
        check(&mut store, &kb);

        // the whole history cost exactly one rebuild (the initial sync)
        assert_eq!(store.stats().0, 1, "row-level history must stay routed");
    }
}
