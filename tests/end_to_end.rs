//! End-to-end integration tests spanning every crate: the full VADA
//! pipeline on the paper's scenario.

use vada::Wrangler;
use vada_common::Value;
use vada_extract::sources::target_schema;
use vada_extract::{score_result, ErrorModel, Scenario, ScenarioConfig, UniverseConfig};
use vada_kb::ContextKind;

fn scenario(props: usize, seed: u64) -> Scenario {
    Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: props, seed },
        ..Default::default()
    })
}

fn bootstrap(s: &Scenario) -> Wrangler {
    let mut w = Wrangler::new();
    w.add_source(s.rightmove.clone());
    w.add_source(s.onthemarket.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap orchestration succeeds");
    w
}

#[test]
fn bootstrap_materialises_typed_result() {
    let s = scenario(100, 1);
    let w = bootstrap(&s);
    let result = w.result().expect("result exists");
    assert!(!result.is_empty());
    assert_eq!(result.schema().attr_names(), target_schema().attr_names());
    // numeric columns carry typed values (or nulls), never raw strings
    let price_idx = result.schema().index_of("price").expect("price attr");
    for t in result.iter() {
        assert!(
            matches!(t[price_idx], Value::Int(_) | Value::Null),
            "price must be int or null, got {:?}",
            t[price_idx]
        );
    }
}

#[test]
fn crimerank_joined_from_open_data() {
    let s = scenario(100, 2);
    let w = bootstrap(&s);
    let result = w.result().expect("result exists");
    let idx = result.schema().index_of("crimerank").expect("crimerank attr");
    let filled = result.iter().filter(|t| !t[idx].is_null()).count();
    assert!(filled > 0, "the district join must fill some crimeranks");
    // filled values are real ranks from the universe
    let pc_idx = result.schema().index_of("postcode").expect("postcode attr");
    let mut verified = 0;
    for t in result.iter() {
        if let (Value::Int(rank), Some(pc)) = (&t[idx], t[pc_idx].as_str()) {
            if let Some(expected) = s.universe.crime_rank(pc) {
                assert_eq!(*rank, expected, "crimerank for {pc}");
                verified += 1;
            }
        }
    }
    assert!(verified > 0);
}

#[test]
fn fusion_removes_cross_source_duplicates() {
    let s = scenario(100, 3);
    let w = bootstrap(&s);
    let result = w.result().expect("result exists");
    let raw_union = s.rightmove.len() + s.onthemarket.len();
    assert!(
        result.len() < raw_union,
        "fused result ({}) must be smaller than the raw union ({raw_union})",
        result.len()
    );
}

#[test]
fn full_paygo_monotone_across_seeds() {
    for seed in [1u64, 2, 3] {
        let s = scenario(100, seed);
        let mut w = bootstrap(&s);
        let f1_bootstrap = score_result(&s.universe, w.result().expect("result")).f1;

        w.add_data_context(
            s.address.clone(),
            ContextKind::Reference,
            &[("street", "street"), ("postcode", "postcode")],
        )
        .expect("context registers");
        w.run().expect("context step succeeds");
        let f1_context = score_result(&s.universe, w.result().expect("result")).f1;

        assert!(
            f1_context > f1_bootstrap - 0.02,
            "seed {seed}: data context must not materially hurt ({f1_bootstrap} -> {f1_context})"
        );
        assert!(
            f1_context > f1_bootstrap,
            "seed {seed}: data context should improve f1 ({f1_bootstrap} -> {f1_context})"
        );
    }
}

#[test]
fn clean_sources_wrangle_almost_perfectly() {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 80, seed: 4 },
        rightmove_errors: ErrorModel::CLEAN,
        onthemarket_errors: ErrorModel::CLEAN,
        duplicate_rate: 0.0,
        source_fraction: 1.0,
        deprivation_coverage: 1.0,
        ..Default::default()
    });
    let w = bootstrap(&s);
    let q = score_result(&s.universe, w.result().expect("result"));
    assert!(q.precision > 0.99, "clean input precision {}", q.precision);
    assert!(q.recall > 0.95, "clean input recall {}", q.recall);
}

#[test]
fn rerun_without_new_information_is_stable() {
    let s = scenario(60, 5);
    let mut w = bootstrap(&s);
    let before = w.result().expect("result").clone();
    let report = w.run().expect("idempotent run");
    assert_eq!(report.executed, 0, "no new inputs: nothing runs");
    assert_eq!(w.result().expect("result").tuples(), before.tuples());
}

#[test]
fn determinism_same_seed_same_result() {
    let build = || {
        let s = scenario(60, 6);
        let w = bootstrap(&s);
        w.result().expect("result").tuples().to_vec()
    };
    assert_eq!(build(), build());
}
