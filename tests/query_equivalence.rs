//! Differential tests for demand-driven (magic-set) query evaluation:
//! answering a query under [`QueryMode::Directed`] must be **byte-identical**
//! to [`QueryMode::Undirected`] — same answer set, same answer order
//! (including deterministic skolem values), same first error — per query,
//! across randomized programs and query workloads (bound/free argument
//! patterns, negation, aggregates, positive cycles, multi-adornment
//! queries, empty demand sets) and across the full knob matrix
//! `{Sequential, Threads(4)} × {Off, Shards(4)} × {Full, Incremental}`.
//! Failure injection drives panics into the rewrite and index-build stages
//! and pins that the surfaced error is the same at every level. This is
//! the contract that makes the `VADA_MAGIC` override safe to flip in
//! production.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vada_common::{AttrType, Parallelism, QueryMode, Relation, Schema, Sharding, Tuple, Value};
use vada_datalog::engine::{Database, Engine, EngineConfig};
use vada_datalog::incremental::IncrementalSession;
use vada_datalog::parser::{parse_program, parse_query};

/// One randomized world: a program over extensional predicates
/// `e(node, node)`, `n(node)`, `lab(node, int)` plus a query workload
/// covering every rewrite shape.
struct World {
    program: String,
    e_rows: Vec<Tuple>,
    n_rows: Vec<Tuple>,
    lab_rows: Vec<Tuple>,
    queries: Vec<String>,
}

fn random_world(rng: &mut StdRng) -> World {
    let node_count = rng.gen_range(6..10usize);
    let nodes: Vec<String> = (0..node_count).map(|i| format!("v{i}")).collect();
    let pick = |rng: &mut StdRng, nodes: &[String]| -> String {
        nodes[rng.gen_range(0..nodes.len())].clone()
    };

    let edge_count = rng.gen_range(8..20usize);
    let mut e_rows = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        e_rows.push(Tuple::new(vec![
            Value::str(pick(rng, &nodes)),
            Value::str(pick(rng, &nodes)),
        ]));
    }
    let n_rows: Vec<Tuple> =
        nodes.iter().map(|n| Tuple::new(vec![Value::str(n.clone())])).collect();
    let lab_rows: Vec<Tuple> = nodes
        .iter()
        .map(|n| Tuple::new(vec![Value::str(n.clone()), Value::Int(rng.gen_range(0..30i64))]))
        .collect();

    let threshold = rng.gen_range(5..25i64);
    let hub_min = rng.gen_range(1..4i64);
    let neg_src = pick(rng, &nodes);
    let seed_a = pick(rng, &nodes);
    let seed_b = pick(rng, &nodes);
    // every rewrite shape in one program: a positive cycle (tc), nonlinear
    // recursion (sg), comparisons + Eq-assignment, an existential head
    // (owner), negation over a recursive predicate (unreach), an aggregate
    // (deg) feeding a filter (hub), a union head with a reversed-argument
    // body (conn), and a ground fact for an IDB predicate (tc).
    let program = format!(
        r#"
        tc("{seed_a}", "{seed_b}").
        tc(X, Y) :- e(X, Y).
        tc(X, Z) :- tc(X, Y), e(Y, Z).
        sg(X, X) :- n(X).
        sg(X, Y) :- e(XP, X), sg(XP, YP), e(YP, Y).
        big(X) :- lab(X, V), V > {threshold}.
        owner(X, Z) :- big(X).
        price2(X, W) :- lab(X, V), W = V * 2.
        unreach(X) :- n(X), not tc("{neg_src}", X).
        deg(X, count(Y)) :- e(X, Y).
        hub(X) :- deg(X, D), D >= {hub_min}.
        conn(X, Y) :- tc(X, Y).
        conn(X, Y) :- tc(Y, X).
        "#
    );

    let c = |rng: &mut StdRng| pick(rng, &nodes);
    let (q1, q2, q3, q4, q5, q6, q7, q8, q9, q10) = (
        c(rng), c(rng), c(rng), c(rng), c(rng), c(rng), c(rng), c(rng), c(rng), c(rng),
    );
    let queries = vec![
        // bound-first / bound-second / both-bound / all-free over the cycle
        format!(r#"tc("{q1}", Y)"#),
        format!(r#"tc(X, "{q2}")"#),
        format!(r#"tc("{q1}", "{q3}")"#),
        "tc(X, Y)".to_string(),
        // nonlinear recursion with sideways demand through e
        format!(r#"sg("{q4}", Y)"#),
        // negation downstream of recursion (tc pinned unrestricted)
        format!(r#"unreach("{q5}")"#),
        // aggregate demand through the group key
        format!(r#"deg("{q6}", D)"#),
        format!(r#"hub("{q7}")"#),
        // union head with a reversed body (falls back per predicate)
        format!(r#"conn("{q8}", Y)"#),
        // skolem-carrying answers: byte-identity covers invented values
        format!(r#"owner("{q9}", Z)"#),
        // Eq-assignment propagation
        format!(r#"price2("{q10}", W)"#),
        // all-free multi-atom query: identity rewrite
        "big(X), lab(X, V)".to_string(),
        // negated query atom: the negated predicate must derive fully
        format!(r#"n(X), not tc("{q1}", X)"#),
        // empty demand set: a constant outside the domain
        r#"tc("zz", Y)"#.to_string(),
        // extensional-only query: nothing needs deriving at all
        format!(r#"lab("{q2}", V)"#),
    ];

    World { program, e_rows, n_rows, lab_rows, queries }
}

/// Build the extensional database from per-predicate row slices, loading
/// through the sharded path when sharding is on (pinning that the directed
/// path composes with shard-built fact orders).
fn build_db(
    rows: &[(&str, &[Tuple])],
    sharding: Sharding,
    par: Parallelism,
) -> Database {
    let mut db = Database::new();
    for (pred, tuples) in rows {
        let schema = match *pred {
            "lab" => {
                Schema::new("lab", [("x", AttrType::Str), ("v", AttrType::Int)]).unwrap()
            }
            "e" => Schema::all_str("e", &["a", "b"]),
            _ => Schema::all_str("n", &["x"]),
        };
        let mut rel = Relation::empty(schema);
        for t in *tuples {
            rel.push(t.clone()).unwrap();
        }
        db.insert_relation_sharded(&rel, sharding, par).unwrap();
    }
    db
}

fn render(rows: &[Tuple]) -> String {
    rows.iter().map(|t| format!("{t:?}")).collect::<Vec<_>>().join("\n")
}

fn config(par: Parallelism, mode: QueryMode) -> EngineConfig {
    EngineConfig { parallelism: par, query_mode: mode, ..EngineConfig::default() }
}

const PARS: [Parallelism; 2] = [Parallelism::Sequential, Parallelism::Threads(4)];
const SHARDS: [Sharding; 2] = [Sharding::Off, Sharding::Shards(4)];

/// The headline pin: directed ≡ undirected per query, across the full
/// `{parallelism} × {sharding} × {evaluation}` matrix, on seed-logged
/// randomized worlds.
#[test]
fn directed_equals_undirected_across_the_knob_matrix() {
    for seed in 0..5u64 {
        println!("query_equivalence: seed {seed}");
        let mut rng = StdRng::seed_from_u64(seed);
        let world = random_world(&mut rng);
        let program = parse_program(&world.program).unwrap();

        // split each extensional relation: the tail arrives as the
        // incremental legs' delta, everything else is the base load
        let split = |rows: &[Tuple]| {
            let k = rows.len().saturating_sub(rows.len() / 4).max(1).min(rows.len());
            (rows[..k].to_vec(), rows[k..].to_vec())
        };
        let (e_base, e_delta) = split(&world.e_rows);
        let (n_base, n_delta) = split(&world.n_rows);
        let (lab_base, lab_delta) = split(&world.lab_rows);
        let delta_pairs: Vec<(String, Tuple)> = e_delta
            .iter()
            .map(|t| ("e".to_string(), t.clone()))
            .chain(n_delta.iter().map(|t| ("n".to_string(), t.clone())))
            .chain(lab_delta.iter().map(|t| ("lab".to_string(), t.clone())))
            .collect();
        // the full-evaluation database loads base rows then delta rows, the
        // same per-predicate order the incremental session sees
        let full_rows: Vec<(&str, Vec<Tuple>)> = vec![
            ("e", e_base.iter().chain(&e_delta).cloned().collect()),
            ("n", n_base.iter().chain(&n_delta).cloned().collect()),
            ("lab", lab_base.iter().chain(&lab_delta).cloned().collect()),
        ];
        let full_slices: Vec<(&str, &[Tuple])> =
            full_rows.iter().map(|(p, v)| (*p, v.as_slice())).collect();
        let base_slices: Vec<(&str, &[Tuple])> = vec![
            ("e", e_base.as_slice()),
            ("n", n_base.as_slice()),
            ("lab", lab_base.as_slice()),
        ];

        for (qi, qsrc) in world.queries.iter().enumerate() {
            let query = parse_query(qsrc).unwrap();
            let baseline_db = build_db(&full_slices, Sharding::Off, Parallelism::Sequential);
            let baseline = render(
                &Engine::new(config(Parallelism::Sequential, QueryMode::Undirected))
                    .run_query(&program, &baseline_db, &query)
                    .unwrap(),
            );

            for par in PARS {
                for sharding in SHARDS {
                    // Full evaluation legs
                    for mode in [QueryMode::Undirected, QueryMode::Directed] {
                        let db = build_db(&full_slices, sharding, par);
                        let got = render(
                            &Engine::new(config(par, mode))
                                .run_query(&program, &db, &query)
                                .unwrap(),
                        );
                        assert_eq!(
                            got, baseline,
                            "seed {seed} query #{qi} `{qsrc}` full {par:?} {sharding:?} {mode:?}"
                        );
                    }

                    // Incremental legs: a directed session must behave
                    // exactly like an undirected one — same outcomes
                    // (applied / fallback reasons), same materialization,
                    // same query answers.
                    let mut observed: Vec<(String, String)> = Vec::new();
                    for mode in [QueryMode::Undirected, QueryMode::Directed] {
                        let mut session =
                            IncrementalSession::new(config(par, mode), &world.program).unwrap();
                        session
                            .run_full(build_db(&base_slices, sharding, par))
                            .unwrap();
                        session.apply(delta_pairs.clone()).unwrap();
                        let answers = render(
                            &Engine::new(config(par, mode))
                                .eval_query(&query, session.database())
                                .unwrap(),
                        );
                        assert_eq!(
                            answers, baseline,
                            "seed {seed} query #{qi} `{qsrc}` incr {par:?} {sharding:?} {mode:?}"
                        );
                        observed.push((format!("{:?}", session.history()), answers));
                    }
                    assert_eq!(
                        observed[0], observed[1],
                        "seed {seed} query #{qi}: directed session diverged from undirected \
                         ({par:?} {sharding:?})"
                    );
                }
            }
        }
    }
}

/// Bound queries must actually restrict: on a world where demand provably
/// prunes, the directed run materializes strictly fewer facts while the
/// answers stay identical. (The ≥10× bar on a large base lives in the
/// `datalog_magic_vs_full` benchmark; this is the structural pin.)
#[test]
fn directed_materializes_a_subset_and_prunes_bound_queries() {
    let mut src = String::new();
    for i in 0..40 {
        src.push_str(&format!("e(\"c{i}\", \"c{}\").\n", i + 1));
    }
    src.push_str("tc(X, Y) :- e(X, Y). tc(X, Z) :- tc(X, Y), e(Y, Z).");
    let program = parse_program(&src).unwrap();
    let query = parse_query(r#"tc("c35", Y)"#).unwrap();
    let engine = Engine::default();
    let full = engine.run(&program, Database::new()).unwrap();
    let directed = engine.run_directed(&program, Database::new(), &query).unwrap();
    assert!(
        directed.facts("tc").len() < full.facts("tc").len() / 10,
        "directed kept {} of {} tc facts",
        directed.facts("tc").len(),
        full.facts("tc").len()
    );
    // the kept sequence is a subsequence of the full sequence…
    let full_tc = full.facts("tc");
    let mut cursor = 0;
    for t in directed.facts("tc") {
        let pos = full_tc[cursor..]
            .iter()
            .position(|x| x == t)
            .expect("directed fact missing from the full run");
        cursor += pos + 1;
    }
    // …and the answers are byte-identical
    assert_eq!(
        engine.eval_query(&query, &directed).unwrap(),
        engine.eval_query(&query, &full).unwrap()
    );
}

/// Failure injection: a panic in the magic-rewrite stage surfaces as the
/// same [`VadaError::Parallel`]-style error at every parallelism and
/// sharding level, and only on the directed path (undirected never runs
/// the rewrite). A directed *session* never runs the rewrite either — it
/// materializes the full program — so it must stay healthy.
#[test]
fn injected_rewrite_fault_is_identical_at_every_level() {
    let mut rng = StdRng::seed_from_u64(7);
    let world = random_world(&mut rng);
    let program = parse_program(&world.program).unwrap();
    let query = parse_query(&world.queries[0]).unwrap();
    let rows: Vec<(&str, &[Tuple])> =
        vec![("e", &world.e_rows), ("n", &world.n_rows), ("lab", &world.lab_rows)];

    let mut errors: Vec<String> = Vec::new();
    for par in PARS {
        for sharding in SHARDS {
            let db = build_db(&rows, sharding, par);
            let mut cfg = config(par, QueryMode::Directed);
            cfg.inject_fault = Some("magic-rewrite");
            let err = Engine::new(cfg).run_query(&program, &db, &query).unwrap_err();
            assert_eq!(err.kind(), "parallel", "{err}");
            errors.push(err.to_string());

            // undirected ignores the rewrite fault entirely
            let mut ucfg = config(par, QueryMode::Undirected);
            ucfg.inject_fault = Some("magic-rewrite");
            Engine::new(ucfg).run_query(&program, &db, &query).unwrap();

            // a directed session materializes the full program: no rewrite
            // stage runs, so the fault never fires
            let mut scfg = config(par, QueryMode::Directed);
            scfg.inject_fault = Some("magic-rewrite");
            let mut session = IncrementalSession::new(scfg, &world.program).unwrap();
            session.run_full(build_db(&rows, sharding, par)).unwrap();
        }
    }
    assert!(errors[0].contains("datalog/magic_rewrite"), "{}", errors[0]);
    assert!(errors.iter().all(|e| e == &errors[0]), "{errors:?}");
}

/// Failure injection: a panic in the shared-index build stage surfaces as
/// the same error in **both** modes (the index store serves undirected and
/// directed runs alike), at every parallelism and sharding level, and
/// through incremental sessions' full materialization.
#[test]
fn injected_index_build_fault_is_identical_at_every_level() {
    let mut rng = StdRng::seed_from_u64(11);
    let world = random_world(&mut rng);
    let program = parse_program(&world.program).unwrap();
    let query = parse_query(&world.queries[0]).unwrap();
    let rows: Vec<(&str, &[Tuple])> =
        vec![("e", &world.e_rows), ("n", &world.n_rows), ("lab", &world.lab_rows)];

    let mut errors: Vec<String> = Vec::new();
    for par in PARS {
        for sharding in SHARDS {
            for mode in [QueryMode::Undirected, QueryMode::Directed] {
                let db = build_db(&rows, sharding, par);
                let mut cfg = config(par, mode);
                cfg.inject_fault = Some("index-build");
                let err = Engine::new(cfg).run_query(&program, &db, &query).unwrap_err();
                assert_eq!(err.kind(), "parallel", "{err}");
                errors.push(err.to_string());

                let mut scfg = config(par, mode);
                scfg.inject_fault = Some("index-build");
                let mut session = IncrementalSession::new(scfg, &world.program).unwrap();
                let serr = session.run_full(build_db(&rows, sharding, par)).unwrap_err();
                errors.push(serr.to_string());
            }
        }
    }
    assert!(errors[0].contains("datalog/index_build"), "{}", errors[0]);
    assert!(errors.iter().all(|e| e == &errors[0]), "{errors:?}");
}

/// The `VADA_MAGIC` env default reaches `EngineConfig` like the other
/// knobs: unset → undirected; the all-knobs CI leg runs with it on.
#[test]
fn engine_config_default_honours_the_env_knob() {
    let expect = QueryMode::from_env();
    assert_eq!(EngineConfig::default().query_mode, expect);
}
