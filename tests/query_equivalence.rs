//! Differential tests for demand-driven (magic-set) query evaluation:
//! answering a query under [`QueryMode::Directed`] must be **byte-identical**
//! to [`QueryMode::Undirected`] — same answer set, same answer order
//! (including deterministic skolem values), same first error — per query,
//! across randomized programs and query workloads (bound/free argument
//! patterns, negation, aggregates, positive cycles, multi-adornment
//! queries, empty demand sets) and across the full knob matrix
//! `{Sequential, Threads(4)} × {Off, Shards(4)} × {Full, Incremental}`.
//! Failure injection drives panics into the rewrite and index-build stages
//! and pins that the surfaced error is the same at every level. This is
//! the contract that makes the `VADA_MAGIC` override safe to flip in
//! production.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vada_common::{AttrType, Parallelism, QueryMode, Relation, Schema, Sharding, Tuple, Value};
use vada_datalog::engine::{Database, Engine, EngineConfig};
use vada_datalog::incremental::IncrementalSession;
use vada_datalog::parser::{parse_program, parse_query};

/// One randomized world: a program over extensional predicates
/// `e(node, node)`, `n(node)`, `lab(node, int)` plus a query workload
/// covering every rewrite shape.
struct World {
    program: String,
    e_rows: Vec<Tuple>,
    n_rows: Vec<Tuple>,
    lab_rows: Vec<Tuple>,
    queries: Vec<String>,
}

fn random_world(rng: &mut StdRng) -> World {
    let node_count = rng.gen_range(6..10usize);
    let nodes: Vec<String> = (0..node_count).map(|i| format!("v{i}")).collect();
    let pick = |rng: &mut StdRng, nodes: &[String]| -> String {
        nodes[rng.gen_range(0..nodes.len())].clone()
    };

    let edge_count = rng.gen_range(8..20usize);
    let mut e_rows = Vec::with_capacity(edge_count);
    for _ in 0..edge_count {
        e_rows.push(Tuple::new(vec![
            Value::str(pick(rng, &nodes)),
            Value::str(pick(rng, &nodes)),
        ]));
    }
    let n_rows: Vec<Tuple> =
        nodes.iter().map(|n| Tuple::new(vec![Value::str(n.clone())])).collect();
    let lab_rows: Vec<Tuple> = nodes
        .iter()
        .map(|n| Tuple::new(vec![Value::str(n.clone()), Value::Int(rng.gen_range(0..30i64))]))
        .collect();

    let threshold = rng.gen_range(5..25i64);
    let hub_min = rng.gen_range(1..4i64);
    let neg_src = pick(rng, &nodes);
    let seed_a = pick(rng, &nodes);
    let seed_b = pick(rng, &nodes);
    // every rewrite shape in one program: a positive cycle (tc), nonlinear
    // recursion (sg), comparisons + Eq-assignment, an existential head
    // (owner), negation over a recursive predicate (unreach), an aggregate
    // (deg) feeding a filter (hub), a union head with a reversed-argument
    // body (conn), and a ground fact for an IDB predicate (tc).
    let program = format!(
        r#"
        tc("{seed_a}", "{seed_b}").
        tc(X, Y) :- e(X, Y).
        tc(X, Z) :- tc(X, Y), e(Y, Z).
        sg(X, X) :- n(X).
        sg(X, Y) :- e(XP, X), sg(XP, YP), e(YP, Y).
        big(X) :- lab(X, V), V > {threshold}.
        owner(X, Z) :- big(X).
        price2(X, W) :- lab(X, V), W = V * 2.
        unreach(X) :- n(X), not tc("{neg_src}", X).
        deg(X, count(Y)) :- e(X, Y).
        hub(X) :- deg(X, D), D >= {hub_min}.
        conn(X, Y) :- tc(X, Y).
        conn(X, Y) :- tc(Y, X).
        "#
    );

    let c = |rng: &mut StdRng| pick(rng, &nodes);
    let (q1, q2, q3, q4, q5, q6, q7, q8, q9, q10) = (
        c(rng), c(rng), c(rng), c(rng), c(rng), c(rng), c(rng), c(rng), c(rng), c(rng),
    );
    let queries = vec![
        // bound-first / bound-second / both-bound / all-free over the cycle
        format!(r#"tc("{q1}", Y)"#),
        format!(r#"tc(X, "{q2}")"#),
        format!(r#"tc("{q1}", "{q3}")"#),
        "tc(X, Y)".to_string(),
        // nonlinear recursion with sideways demand through e
        format!(r#"sg("{q4}", Y)"#),
        // negation downstream of recursion (tc pinned unrestricted)
        format!(r#"unreach("{q5}")"#),
        // aggregate demand through the group key
        format!(r#"deg("{q6}", D)"#),
        format!(r#"hub("{q7}")"#),
        // union head with a reversed body (falls back per predicate)
        format!(r#"conn("{q8}", Y)"#),
        // skolem-carrying answers: byte-identity covers invented values
        format!(r#"owner("{q9}", Z)"#),
        // Eq-assignment propagation
        format!(r#"price2("{q10}", W)"#),
        // all-free multi-atom query: identity rewrite
        "big(X), lab(X, V)".to_string(),
        // negated query atom: the negated predicate must derive fully
        format!(r#"n(X), not tc("{q1}", X)"#),
        // empty demand set: a constant outside the domain
        r#"tc("zz", Y)"#.to_string(),
        // extensional-only query: nothing needs deriving at all
        format!(r#"lab("{q2}", V)"#),
    ];

    World { program, e_rows, n_rows, lab_rows, queries }
}

/// Build the extensional database from per-predicate row slices, loading
/// through the sharded path when sharding is on (pinning that the directed
/// path composes with shard-built fact orders).
fn build_db(
    rows: &[(&str, &[Tuple])],
    sharding: Sharding,
    par: Parallelism,
) -> Database {
    let mut db = Database::new();
    for (pred, tuples) in rows {
        let schema = match *pred {
            "lab" => {
                Schema::new("lab", [("x", AttrType::Str), ("v", AttrType::Int)]).unwrap()
            }
            "e" => Schema::all_str("e", &["a", "b"]),
            _ => Schema::all_str("n", &["x"]),
        };
        let mut rel = Relation::empty(schema);
        for t in *tuples {
            rel.push(t.clone()).unwrap();
        }
        db.insert_relation_sharded(&rel, sharding, par).unwrap();
    }
    db
}

fn render(rows: &[Tuple]) -> String {
    rows.iter().map(|t| format!("{t:?}")).collect::<Vec<_>>().join("\n")
}

fn config(par: Parallelism, mode: QueryMode) -> EngineConfig {
    EngineConfig { parallelism: par, query_mode: mode, ..EngineConfig::default() }
}

const PARS: [Parallelism; 2] = [Parallelism::Sequential, Parallelism::Threads(4)];
const SHARDS: [Sharding; 2] = [Sharding::Off, Sharding::Shards(4)];

/// The headline pin: directed ≡ undirected per query, across the full
/// `{parallelism} × {sharding} × {evaluation}` matrix, on seed-logged
/// randomized worlds.
#[test]
fn directed_equals_undirected_across_the_knob_matrix() {
    for seed in 0..5u64 {
        println!("query_equivalence: seed {seed}");
        let mut rng = StdRng::seed_from_u64(seed);
        let world = random_world(&mut rng);
        let program = parse_program(&world.program).unwrap();

        // split each extensional relation: the tail arrives as the
        // incremental legs' delta, everything else is the base load
        let split = |rows: &[Tuple]| {
            let k = rows.len().saturating_sub(rows.len() / 4).max(1).min(rows.len());
            (rows[..k].to_vec(), rows[k..].to_vec())
        };
        let (e_base, e_delta) = split(&world.e_rows);
        let (n_base, n_delta) = split(&world.n_rows);
        let (lab_base, lab_delta) = split(&world.lab_rows);
        let delta_pairs: Vec<(String, Tuple)> = e_delta
            .iter()
            .map(|t| ("e".to_string(), t.clone()))
            .chain(n_delta.iter().map(|t| ("n".to_string(), t.clone())))
            .chain(lab_delta.iter().map(|t| ("lab".to_string(), t.clone())))
            .collect();
        // the full-evaluation database loads base rows then delta rows, the
        // same per-predicate order the incremental session sees
        let full_rows: Vec<(&str, Vec<Tuple>)> = vec![
            ("e", e_base.iter().chain(&e_delta).cloned().collect()),
            ("n", n_base.iter().chain(&n_delta).cloned().collect()),
            ("lab", lab_base.iter().chain(&lab_delta).cloned().collect()),
        ];
        let full_slices: Vec<(&str, &[Tuple])> =
            full_rows.iter().map(|(p, v)| (*p, v.as_slice())).collect();
        let base_slices: Vec<(&str, &[Tuple])> = vec![
            ("e", e_base.as_slice()),
            ("n", n_base.as_slice()),
            ("lab", lab_base.as_slice()),
        ];

        for (qi, qsrc) in world.queries.iter().enumerate() {
            let query = parse_query(qsrc).unwrap();
            let baseline_db = build_db(&full_slices, Sharding::Off, Parallelism::Sequential);
            let baseline = render(
                &Engine::new(config(Parallelism::Sequential, QueryMode::Undirected))
                    .run_query(&program, &baseline_db, &query)
                    .unwrap(),
            );

            for par in PARS {
                for sharding in SHARDS {
                    // Full evaluation legs
                    for mode in [QueryMode::Undirected, QueryMode::Directed] {
                        let db = build_db(&full_slices, sharding, par);
                        let got = render(
                            &Engine::new(config(par, mode))
                                .run_query(&program, &db, &query)
                                .unwrap(),
                        );
                        assert_eq!(
                            got, baseline,
                            "seed {seed} query #{qi} `{qsrc}` full {par:?} {sharding:?} {mode:?}"
                        );
                    }

                    // Incremental legs: a directed session must behave
                    // exactly like an undirected one — same outcomes
                    // (applied / fallback reasons), same materialization,
                    // same query answers.
                    let mut observed: Vec<(String, String)> = Vec::new();
                    for mode in [QueryMode::Undirected, QueryMode::Directed] {
                        let mut session =
                            IncrementalSession::new(config(par, mode), &world.program).unwrap();
                        session
                            .run_full(build_db(&base_slices, sharding, par))
                            .unwrap();
                        session.apply(delta_pairs.clone()).unwrap();
                        let answers = render(
                            &Engine::new(config(par, mode))
                                .eval_query(&query, session.database())
                                .unwrap(),
                        );
                        assert_eq!(
                            answers, baseline,
                            "seed {seed} query #{qi} `{qsrc}` incr {par:?} {sharding:?} {mode:?}"
                        );
                        observed.push((format!("{:?}", session.history()), answers));
                    }
                    assert_eq!(
                        observed[0], observed[1],
                        "seed {seed} query #{qi}: directed session diverged from undirected \
                         ({par:?} {sharding:?})"
                    );
                }
            }
        }
    }
}

/// Bound queries must actually restrict: on a world where demand provably
/// prunes, the directed run materializes strictly fewer facts while the
/// answers stay identical. (The ≥10× bar on a large base lives in the
/// `datalog_magic_vs_full` benchmark; this is the structural pin.)
#[test]
fn directed_materializes_a_subset_and_prunes_bound_queries() {
    let mut src = String::new();
    for i in 0..40 {
        src.push_str(&format!("e(\"c{i}\", \"c{}\").\n", i + 1));
    }
    src.push_str("tc(X, Y) :- e(X, Y). tc(X, Z) :- tc(X, Y), e(Y, Z).");
    let program = parse_program(&src).unwrap();
    let query = parse_query(r#"tc("c35", Y)"#).unwrap();
    let engine = Engine::default();
    let full = engine.run(&program, Database::new()).unwrap();
    let directed = engine.run_directed(&program, Database::new(), &query).unwrap();
    assert!(
        directed.facts("tc").len() < full.facts("tc").len() / 10,
        "directed kept {} of {} tc facts",
        directed.facts("tc").len(),
        full.facts("tc").len()
    );
    // the kept sequence is a subsequence of the full sequence…
    let full_tc = full.facts("tc");
    let mut cursor = 0;
    for t in directed.facts("tc") {
        let pos = full_tc[cursor..]
            .iter()
            .position(|x| x == t)
            .expect("directed fact missing from the full run");
        cursor += pos + 1;
    }
    // …and the answers are byte-identical
    assert_eq!(
        engine.eval_query(&query, &directed).unwrap(),
        engine.eval_query(&query, &full).unwrap()
    );
}

/// Failure injection: a panic in the magic-rewrite stage surfaces as the
/// same [`VadaError::Parallel`]-style error at every parallelism and
/// sharding level, and only on the directed path (undirected never runs
/// the rewrite). A directed *session* never runs the rewrite either — it
/// materializes the full program — so it must stay healthy.
#[test]
fn injected_rewrite_fault_is_identical_at_every_level() {
    let mut rng = StdRng::seed_from_u64(7);
    let world = random_world(&mut rng);
    let program = parse_program(&world.program).unwrap();
    let query = parse_query(&world.queries[0]).unwrap();
    let rows: Vec<(&str, &[Tuple])> =
        vec![("e", &world.e_rows), ("n", &world.n_rows), ("lab", &world.lab_rows)];

    let mut errors: Vec<String> = Vec::new();
    for par in PARS {
        for sharding in SHARDS {
            let db = build_db(&rows, sharding, par);
            let mut cfg = config(par, QueryMode::Directed);
            cfg.inject_fault = Some("magic-rewrite");
            let err = Engine::new(cfg).run_query(&program, &db, &query).unwrap_err();
            assert_eq!(err.kind(), "parallel", "{err}");
            errors.push(err.to_string());

            // undirected ignores the rewrite fault entirely
            let mut ucfg = config(par, QueryMode::Undirected);
            ucfg.inject_fault = Some("magic-rewrite");
            Engine::new(ucfg).run_query(&program, &db, &query).unwrap();

            // a directed session materializes the full program: no rewrite
            // stage runs, so the fault never fires
            let mut scfg = config(par, QueryMode::Directed);
            scfg.inject_fault = Some("magic-rewrite");
            let mut session = IncrementalSession::new(scfg, &world.program).unwrap();
            session.run_full(build_db(&rows, sharding, par)).unwrap();
        }
    }
    assert!(errors[0].contains("datalog/magic_rewrite"), "{}", errors[0]);
    assert!(errors.iter().all(|e| e == &errors[0]), "{errors:?}");
}

/// Failure injection: a panic in the shared-index build stage surfaces as
/// the same error in **both** modes (the index store serves undirected and
/// directed runs alike), at every parallelism and sharding level, and
/// through incremental sessions' full materialization.
#[test]
fn injected_index_build_fault_is_identical_at_every_level() {
    let mut rng = StdRng::seed_from_u64(11);
    let world = random_world(&mut rng);
    let program = parse_program(&world.program).unwrap();
    let query = parse_query(&world.queries[0]).unwrap();
    let rows: Vec<(&str, &[Tuple])> =
        vec![("e", &world.e_rows), ("n", &world.n_rows), ("lab", &world.lab_rows)];

    let mut errors: Vec<String> = Vec::new();
    for par in PARS {
        for sharding in SHARDS {
            for mode in [QueryMode::Undirected, QueryMode::Directed] {
                let db = build_db(&rows, sharding, par);
                let mut cfg = config(par, mode);
                cfg.inject_fault = Some("index-build");
                let err = Engine::new(cfg).run_query(&program, &db, &query).unwrap_err();
                assert_eq!(err.kind(), "parallel", "{err}");
                errors.push(err.to_string());

                let mut scfg = config(par, mode);
                scfg.inject_fault = Some("index-build");
                let mut session = IncrementalSession::new(scfg, &world.program).unwrap();
                let serr = session.run_full(build_db(&rows, sharding, par)).unwrap_err();
                errors.push(serr.to_string());
            }
        }
    }
    assert!(errors[0].contains("datalog/index_build"), "{}", errors[0]);
    assert!(errors.iter().all(|e| e == &errors[0]), "{errors:?}");
}

/// The `VADA_MAGIC` env default reaches `EngineConfig` like the other
/// knobs: unset → undirected; the all-knobs CI leg runs with it on.
#[test]
fn engine_config_default_honours_the_env_knob() {
    let expect = QueryMode::from_env();
    assert_eq!(EngineConfig::default().query_mode, expect);
}

/// The cache leg: a [`QueryCache`] driven through seed-logged randomized
/// edit scripts — appends, row removals, metadata-only steps, in-place
/// rewrites the row-delta vocabulary can't express (a pruned journal
/// window), and lineage divergence — with repeated bound-pattern queries
/// interleaved after every step. Every cached answer must be
/// byte-identical to a cold directed run over a freshly built database,
/// across `{parallelism} × {sharding}`; the pruned-window and
/// diverged-lineage steps must drop the view and rebuild clean, and the
/// `magic.cache.*` counters must account for every call exactly once.
#[test]
fn cached_queries_equal_cold_directed_runs_across_edit_scripts() {
    use vada_common::Obs;
    use vada_datalog::{CacheDelta, DeltaBatch, QueryCache};

    // one tc cycle + one non-recursive join + a filter: the recursive view
    // maintains through full fallback, the flat ones through the semi-naive
    // fast path — both must stay byte-identical to cold runs
    let program_src = r#"
        tc(X, Y) :- e(X, Y).
        tc(X, Z) :- tc(X, Y), e(Y, Z).
        res(X, W) :- e(X, Y), lab(Y, W).
        big(X) :- lab(X, V), V > 10.
    "#;
    let program = parse_program(program_src).unwrap();
    let queries =
        [r#"tc("v0", Y)"#, r#"res("v3", W)"#, "big(X)", r#"e(X, "v5")"#];

    // the deterministic script skeleton (content is seed-randomized):
    // 0 append, 1 append, 2 remove, 3 metadata-only, 4 in-place rewrite
    // (pruned window → Unknown), 5 append, 6 lineage divergence, 7 remove
    const STEPS: usize = 8;

    for seed in 0..4u64 {
        println!("query_cache_equivalence: seed {seed}");
        for par in PARS {
            for sharding in SHARDS {
                let mut rng = StdRng::seed_from_u64(seed * 31 + 5);
                let obs = Obs::enabled();
                let mut cfg = config(par, QueryMode::Directed);
                cfg.obs = obs.clone();
                let mut cache = QueryCache::new(cfg.clone());

                // ground truth, in knowledge-base row order; edges are
                // unique so removal-by-value is unambiguous
                let mut e_rows: Vec<Tuple> = (0..8)
                    .map(|i| {
                        Tuple::new(vec![
                            Value::str(format!("v{i}")),
                            Value::str(format!("v{}", (i + 1) % 8)),
                        ])
                    })
                    .collect();
                let mut lab_rows: Vec<Tuple> = (0..8)
                    .map(|i| {
                        Tuple::new(vec![
                            Value::str(format!("v{i}")),
                            Value::Int(rng.gen_range(0..30i64)),
                        ])
                    })
                    .collect();
                let mut fresh = 0usize;

                let mut lineage = seed;
                let mut version = 0u64;
                for step in 0..STEPS {
                    let delta = match step {
                        0 | 1 | 5 => {
                            // append a unique edge into the live graph plus
                            // a label for its new endpoint
                            let a = rng.gen_range(0..8usize);
                            let b = format!("w{fresh}");
                            fresh += 1;
                            let e = Tuple::new(vec![
                                Value::str(format!("v{a}")),
                                Value::str(b.clone()),
                            ]);
                            let lab = Tuple::new(vec![
                                Value::str(b),
                                Value::Int(rng.gen_range(0..30i64)),
                            ]);
                            e_rows.push(e.clone());
                            lab_rows.push(lab.clone());
                            CacheDelta::Rows(vec![DeltaBatch::Append(vec![
                                ("e".into(), e),
                                ("lab".into(), lab),
                            ])])
                        }
                        2 | 7 => {
                            let victim = e_rows.remove(rng.gen_range(0..e_rows.len()));
                            CacheDelta::Rows(vec![DeltaBatch::Remove(vec![(
                                "e".into(),
                                victim,
                            )])])
                        }
                        3 => CacheDelta::Unchanged,
                        4 => {
                            // rewrite a label in place: inexpressible as an
                            // ordered append/remove suffix, i.e. the journal
                            // window was pruned under the view
                            let i = rng.gen_range(0..lab_rows.len());
                            lab_rows[i] = Tuple::new(vec![
                                lab_rows[i][0].clone(),
                                Value::Int(rng.gen_range(0..30i64)),
                            ]);
                            CacheDelta::Unknown
                        }
                        6 => {
                            // a different journal identity: even an innocent
                            // delta claim must not be trusted
                            lineage += 1000;
                            e_rows.remove(0);
                            CacheDelta::Unchanged
                        }
                        _ => unreachable!(),
                    };
                    version += 1;

                    let slices: Vec<(&str, &[Tuple])> =
                        vec![("e", &e_rows), ("lab", &lab_rows)];
                    for (qi, qsrc) in queries.iter().enumerate() {
                        let query = parse_query(qsrc).unwrap();
                        let cold_db = build_db(&slices, sharding, par);
                        let cold = render(
                            &Engine::new(cfg.clone())
                                .run_query(&program, &cold_db, &query)
                                .unwrap(),
                        );
                        // first call maintains or rebuilds, the repeat must
                        // serve warm; both byte-identical to the cold run
                        for repeat in 0..2 {
                            let got = render(
                                &cache
                                    .query(program_src, qsrc, lineage, version, delta.clone(), || {
                                        Ok(build_db(&slices, sharding, par))
                                    })
                                    .unwrap(),
                            );
                            assert_eq!(
                                got, cold,
                                "seed {seed} step {step} query #{qi} `{qsrc}` repeat {repeat} \
                                 {par:?} {sharding:?}"
                            );
                        }
                    }
                }

                // counter audit: every call lands on exactly one counter;
                // only the initial colds are misses, and exactly the
                // pruned-window + diverged-lineage steps invalidate
                let q = queries.len() as u64;
                let calls = (STEPS as u64) * q * 2;
                let (hits, misses, invalidations) = (
                    obs.get(vada_common::obs::key::MAGIC_CACHE_HITS),
                    obs.get(vada_common::obs::key::MAGIC_CACHE_MISSES),
                    obs.get(vada_common::obs::key::MAGIC_CACHE_INVALIDATIONS),
                );
                assert_eq!(misses, q, "{par:?} {sharding:?}");
                assert_eq!(invalidations, 2 * q, "{par:?} {sharding:?}");
                assert_eq!(hits, calls - misses - invalidations, "{par:?} {sharding:?}");
            }
        }
    }
}

/// The warm-path acceptance pin at the engine level: a repeated bound
/// query over an unchanged base does **zero** `datalog/index_build` work
/// and **zero** stratum passes — the counters prove the repeat never
/// re-derives or re-indexes anything.
#[test]
fn repeated_bound_query_on_unchanged_base_does_no_evaluation_work() {
    use vada_common::Obs;
    use vada_datalog::{CacheDelta, QueryCache};

    let program_src = "tc(X, Y) :- e(X, Y). tc(X, Z) :- tc(X, Y), e(Y, Z).";
    let mut db = Database::new();
    for i in 0..30 {
        db.insert(
            "e",
            Tuple::new(vec![Value::Int(i), Value::Int(i + 1)]),
        );
    }

    let obs = Obs::enabled();
    let mut cfg = EngineConfig { query_mode: QueryMode::Directed, ..EngineConfig::default() };
    cfg.obs = obs.clone();
    let mut cache = QueryCache::new(cfg);

    let build = || {
        let mut fresh = Database::new();
        for i in 0..30 {
            fresh.insert("e", Tuple::new(vec![Value::Int(i), Value::Int(i + 1)]));
        }
        Ok(fresh)
    };
    let cold = cache
        .query(program_src, r#"tc(3, Y)"#, 1, 1, CacheDelta::Unchanged, build)
        .unwrap();
    assert!(!cold.is_empty());

    use vada_common::obs::key as obs_key;
    let passes = obs.get(obs_key::STRATUM_PASSES);
    assert!(passes > 0, "the cold build must have derived something");
    let builds = obs.get(obs_key::INDEX_BUILDS);
    let warm = cache
        .query(program_src, r#"tc(3, Y)"#, 1, 1, CacheDelta::Unchanged, build)
        .unwrap();
    assert_eq!(warm, cold);
    assert_eq!(obs.get(obs_key::STRATUM_PASSES), passes, "a warm hit re-derived");
    assert_eq!(obs.get(obs_key::INDEX_BUILDS), builds, "a warm hit re-indexed");
}
