//! Differential tests for the incremental delta-evaluation subsystem:
//! a wrangle under [`Evaluation::Incremental`] must produce output that is
//! byte-identical to [`Evaluation::Full`] — same result relation (rows in
//! the same order), same trace shape (every stable field), same errors —
//! across randomized knowledge-base edit scripts, including the
//! composition `Incremental × Threads(n)`. This is the contract that
//! makes the `VADA_INCREMENTAL` override safe to flip in production.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vada::{Evaluation, OrchestratorConfig, Parallelism, Wrangler};
use vada_common::{csv, Tuple, Value};
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_kb::{ContextKind, FeedbackRecord, FeedbackTarget, PairwiseStatement, Verdict};

/// Render everything observable about a wrangle: the result relation as
/// CSV bytes and the trace's stable fields (everything but duration).
fn observe(w: &Wrangler) -> String {
    let result = w.result().map(csv::write_relation);
    let trace: Vec<String> = w
        .trace()
        .entries()
        .iter()
        .map(|e| {
            format!(
                "#{} {} [{}] dep={} v{}->v{} writes={} {}",
                e.step,
                e.transducer,
                e.activity,
                e.input_dependency,
                e.kb_version_before,
                e.kb_version_after,
                e.writes,
                e.summary
            )
        })
        .collect();
    canonicalize_map_ids(&format!(
        "{}\n=== result ===\n{}",
        trace.join("\n"),
        result.unwrap_or_default()
    ))
}

/// Mapping ids (`map<N>`) come from a process-global counter, so their
/// absolute numbers depend on how many wrangles ran earlier in this test
/// process. Rewrite each distinct id to its first-seen ordinal so two runs
/// compare structurally while the order and count of ids stay pinned.
fn canonicalize_map_ids(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut seen: Vec<&str> = Vec::new();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if s[i..].starts_with("map") && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric()) {
            let start = i + 3;
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end > start {
                let id = &s[i..end];
                let ord = seen.iter().position(|x| *x == id).unwrap_or_else(|| {
                    seen.push(id);
                    seen.len() - 1
                });
                out.push_str(&format!("map#{ord}"));
                i = end;
                continue;
            }
        }
        let c = s[i..].chars().next().unwrap();
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// One step of the randomized edit script, applied identically to every
/// wrangler under comparison.
#[derive(Debug, Clone)]
enum Edit {
    /// Append cloned-and-tweaked rows to an existing source. Tweaking a
    /// non-postcode cell keeps most appends on the semi-naive fast path;
    /// fresh postcodes exercise the fallback.
    GrowSource { source: &'static str, rows: usize, fresh_postcode: bool },
    /// Stage a small CSV document (exercises ingestion → rematching →
    /// regeneration, i.e. structural change on the incremental side).
    StageDocument { tag: u64 },
    /// Rescore a schema match (picked by structural key, not id).
    MutateMatch { nth: usize, score: f64 },
    /// Mark a result cell incorrect (feedback → veto → repair).
    Feedback { row: u64 },
    /// Register the address reference data (once per script).
    AddContext,
    /// Replace the user context.
    UserContext { strength: &'static str },
    /// Remove rows from a source (retraction path: the journal records a
    /// row-level `RowsRemoved`, the incremental side routes it through
    /// counting/DRed, the full side re-reads the shrunk relation).
    RemoveRows { source: &'static str, nth: u64, count: usize },
    /// Rewrite one row in place (`RowsReplaced`): tail rewrites can replay
    /// as retract+append, mid-relation rewrites force a rebuild — both
    /// must stay byte-identical.
    UpdateRow { source: &'static str, nth: u64, tail: bool },
}

fn random_script(rng: &mut StdRng, steps: usize) -> Vec<Vec<Edit>> {
    let mut script = Vec::new();
    let mut context_added = false;
    for step in 0..steps {
        let mut batch = Vec::new();
        for _ in 0..rng.gen_range(1usize..3) {
            let op = rng.gen_range(0usize..11);
            batch.push(match op {
                0..=2 => Edit::GrowSource {
                    source: if rng.gen_range(0usize..2) == 0 { "rightmove" } else { "onthemarket" },
                    rows: rng.gen_range(1usize..4),
                    fresh_postcode: rng.gen_range(0usize..4) == 0,
                },
                3 => Edit::StageDocument { tag: rng.gen_range(0u64..1000) },
                4 => Edit::MutateMatch {
                    nth: rng.gen_range(0usize..50),
                    score: 0.55 + 0.4 * rng.gen_range(0u64..100) as f64 / 100.0,
                },
                5 => Edit::Feedback { row: rng.gen_range(0u64..1000) },
                6 if !context_added => {
                    context_added = true;
                    Edit::AddContext
                }
                7 | 8 => Edit::RemoveRows {
                    source: if rng.gen_range(0usize..2) == 0 { "rightmove" } else { "onthemarket" },
                    nth: rng.gen_range(0u64..1000),
                    count: rng.gen_range(1usize..3),
                },
                9 => Edit::UpdateRow {
                    source: if rng.gen_range(0usize..2) == 0 { "rightmove" } else { "onthemarket" },
                    nth: rng.gen_range(0u64..1000),
                    tail: rng.gen_range(0usize..2) == 0,
                },
                _ => Edit::UserContext {
                    strength: if step % 2 == 0 { "strongly" } else { "very strongly" },
                },
            });
        }
        script.push(batch);
    }
    script
}

/// Apply one edit to a wrangler. Uses only structural keys (never raw
/// generated ids) so the same edit lands identically in every wrangler.
fn apply_edit(w: &mut Wrangler, scenario: &Scenario, edit: &Edit) {
    match edit {
        Edit::GrowSource { source, rows, fresh_postcode } => {
            let mut rel = w.kb().relation(source).expect("source exists").clone();
            let pc_col = rel
                .schema()
                .attr_names()
                .iter()
                .position(|a| a.contains("post"))
                .unwrap_or(0);
            let n = rel.len();
            for k in 0..*rows {
                let template = rel.tuples()[(n + k * 7) % n].clone();
                let mut values: Vec<Value> = template.iter().cloned().collect();
                // tweak the first non-postcode column so the row is new
                let tweak_col = (0..values.len()).find(|c| *c != pc_col).unwrap_or(0);
                values[tweak_col] = Value::str(format!("edit {} {}", n, k));
                if *fresh_postcode {
                    values[pc_col] = Value::str(format!("Z{} {}XY", (n + k) % 90, k % 9));
                }
                rel.push(Tuple::new(values)).unwrap();
            }
            w.add_source(rel);
        }
        Edit::StageDocument { tag } => {
            w.kb_mut().stage_document(
                format!("extra_{tag}"),
                format!("code,label\nC{tag},staged document {tag}\nC{},other\n", tag % 7),
            );
        }
        Edit::MutateMatch { nth, score } => {
            let mut keys: Vec<(String, String, String, String)> = w
                .kb()
                .matches()
                .map(|m| {
                    (m.src_rel.clone(), m.src_attr.clone(), m.tgt_attr.clone(), m.id.clone())
                })
                .collect();
            keys.sort();
            if keys.is_empty() {
                return;
            }
            let id = keys[nth % keys.len()].3.clone();
            w.kb_mut().set_match_score(&id, *score).unwrap();
        }
        Edit::Feedback { row } => {
            let Some(result) = w.result() else { return };
            if result.is_empty() {
                return;
            }
            let row = (*row as usize) % result.len();
            w.add_feedback([FeedbackRecord {
                id: format!("fb_{row}"),
                target: FeedbackTarget::Attribute {
                    relation: result.name().to_string(),
                    row,
                    attr: "price".into(),
                },
                verdict: Verdict::Incorrect,
            }]);
        }
        Edit::AddContext => {
            w.add_data_context(
                scenario.address.clone(),
                ContextKind::Reference,
                &[("street", "street"), ("postcode", "postcode")],
            )
            .unwrap();
        }
        Edit::UserContext { strength } => {
            w.set_user_context(vec![PairwiseStatement {
                more_important: "completeness(crimerank)".into(),
                less_important: "completeness(bedrooms)".into(),
                strength: strength.to_string(),
            }]);
        }
        Edit::RemoveRows { source, nth, count } => {
            let len = w.kb().relation(source).expect("source exists").len();
            if len == 0 {
                return;
            }
            // structural pick: spread deterministic indices over the relation
            let rows: Vec<usize> =
                (0..*count).map(|k| ((*nth as usize) + k * 3) % len).collect();
            w.remove_source_rows(source, &rows).expect("rows exist");
        }
        Edit::UpdateRow { source, nth, tail } => {
            let rel = w.kb().relation(source).expect("source exists").clone();
            if rel.is_empty() {
                return;
            }
            let row = if *tail { rel.len() - 1 } else { (*nth as usize) % rel.len() };
            let pc_col = rel
                .schema()
                .attr_names()
                .iter()
                .position(|a| a.contains("post"))
                .unwrap_or(0);
            let mut values: Vec<Value> = rel.tuples()[row].iter().cloned().collect();
            let tweak_col = (0..values.len()).find(|c| *c != pc_col).unwrap_or(0);
            values[tweak_col] = Value::str(format!("upd {} {}", nth, row));
            w.update_source_rows(source, &[(row, Tuple::new(values))])
                .expect("row exists");
        }
    }
}

fn wrangler(scenario: &Scenario, evaluation: Evaluation, parallelism: Parallelism) -> Wrangler {
    let mut w = Wrangler::new();
    w.set_orchestrator_config(OrchestratorConfig {
        evaluation,
        parallelism,
        ..OrchestratorConfig::default()
    });
    w.add_source(scenario.rightmove.clone());
    w.add_source(scenario.onthemarket.clone());
    w.add_source(scenario.deprivation.clone());
    w.set_target(target_schema());
    w
}

#[test]
fn randomized_edit_scripts_identical_across_modes() {
    for seed in [3u64, 17, 42] {
        // seed-logged so a failing case is reproducible from the test output
        println!("randomized_edit_scripts_identical_across_modes: seed {seed}");
        let scenario = Scenario::generate(ScenarioConfig {
            universe: UniverseConfig { properties: 60, seed: 7 + seed },
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let script = random_script(&mut rng, 5);

        // baseline plus the three interesting compositions
        let mut fleet = vec![
            ("full/seq", wrangler(&scenario, Evaluation::Full, Parallelism::Sequential)),
            ("inc/seq", wrangler(&scenario, Evaluation::Incremental, Parallelism::Sequential)),
            ("inc/t4", wrangler(&scenario, Evaluation::Incremental, Parallelism::Threads(4))),
            ("full/t4", wrangler(&scenario, Evaluation::Full, Parallelism::Threads(4))),
        ];

        // bootstrap
        for (_, w) in &mut fleet {
            w.run().expect("bootstrap succeeds");
        }
        let baseline = observe(&fleet[0].1);
        for (name, w) in &fleet[1..] {
            assert_eq!(observe(w), baseline, "seed {seed}: {name} diverged at bootstrap");
        }

        // replay the edit script, comparing after every orchestration run
        for (step, batch) in script.iter().enumerate() {
            for (_, w) in &mut fleet {
                for edit in batch {
                    apply_edit(w, &scenario, edit);
                }
                w.run().expect("edit step succeeds");
            }
            let baseline = observe(&fleet[0].1);
            for (name, w) in &fleet[1..] {
                assert_eq!(
                    observe(w),
                    baseline,
                    "seed {seed}: {name} diverged after step {step} ({batch:?})"
                );
            }
        }
    }
}

/// Delete-then-reinsert: a removed row that comes back lands at the *end*
/// of the relation, so the scratch row order differs from the original —
/// every mode must agree on the reordered output at every step.
#[test]
fn delete_then_reinsert_identical_across_modes() {
    let scenario = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 40, seed: 11 },
        ..Default::default()
    });
    let mut fleet = vec![
        ("full/seq", wrangler(&scenario, Evaluation::Full, Parallelism::Sequential)),
        ("inc/seq", wrangler(&scenario, Evaluation::Incremental, Parallelism::Sequential)),
        ("inc/t4", wrangler(&scenario, Evaluation::Incremental, Parallelism::Threads(4))),
        ("full/t4", wrangler(&scenario, Evaluation::Full, Parallelism::Threads(4))),
    ];
    let compare = |fleet: &[(&str, Wrangler)], stage: &str| {
        let baseline = observe(&fleet[0].1);
        for (name, w) in &fleet[1..] {
            assert_eq!(observe(w), baseline, "{name} diverged at {stage}");
        }
    };
    for (_, w) in &mut fleet {
        w.run().expect("bootstrap succeeds");
    }
    compare(&fleet, "bootstrap");

    // remove a mid-relation row, run, then push the same row back and run
    let removed_rows: Vec<Tuple> = {
        let w = &fleet[0].1;
        let rel = w.kb().relation("rightmove").unwrap();
        vec![rel.tuples()[rel.len() / 2].clone()]
    };
    for (_, w) in &mut fleet {
        let rel = w.kb().relation("rightmove").unwrap();
        let row = rel.len() / 2;
        w.remove_source_rows("rightmove", &[row]).unwrap();
        w.run().expect("post-removal run succeeds");
    }
    compare(&fleet, "after removal");
    for (_, w) in &mut fleet {
        let mut rel = w.kb().relation("rightmove").unwrap().clone();
        for t in &removed_rows {
            rel.push(t.clone()).unwrap();
        }
        w.add_source(rel);
        w.run().expect("post-reinsert run succeeds");
    }
    compare(&fleet, "after reinsert");
}

/// Delete-everything: draining a source to zero rows (and wrangling over
/// the emptiness) must stay byte-identical across modes, and so must the
/// recovery when data comes back.
#[test]
fn delete_everything_identical_across_modes() {
    let scenario = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 30, seed: 29 },
        ..Default::default()
    });
    let mut fleet = vec![
        ("full/seq", wrangler(&scenario, Evaluation::Full, Parallelism::Sequential)),
        ("inc/seq", wrangler(&scenario, Evaluation::Incremental, Parallelism::Sequential)),
        ("inc/t4", wrangler(&scenario, Evaluation::Incremental, Parallelism::Threads(4))),
        ("full/t4", wrangler(&scenario, Evaluation::Full, Parallelism::Threads(4))),
    ];
    let compare = |fleet: &[(&str, Wrangler)], stage: &str| {
        let baseline = observe(&fleet[0].1);
        for (name, w) in &fleet[1..] {
            assert_eq!(observe(w), baseline, "{name} diverged at {stage}");
        }
    };
    for (_, w) in &mut fleet {
        w.run().expect("bootstrap succeeds");
    }
    compare(&fleet, "bootstrap");

    for (_, w) in &mut fleet {
        let len = w.kb().relation("onthemarket").unwrap().len();
        let rows: Vec<usize> = (0..len).collect();
        w.remove_source_rows("onthemarket", &rows).unwrap();
        w.run().expect("run over a drained source succeeds");
    }
    compare(&fleet, "after draining onthemarket");

    for (_, w) in &mut fleet {
        let mut rel = w.kb().relation("onthemarket").unwrap().clone();
        assert!(rel.is_empty());
        for t in scenario.onthemarket.tuples().iter().take(5) {
            rel.push(t.clone()).unwrap();
        }
        w.add_source(rel);
        w.run().expect("recovery run succeeds");
    }
    compare(&fleet, "after recovery");
}

/// The incremental path must actually fire on append-only growth — and do
/// measurably less derivation work than a full re-run — not silently fall
/// back everywhere. Pinned at the executor level where the counters live.
#[test]
fn incremental_path_fires_and_does_less_work() {
    use vada_map::{ExecuteConfig, IncrementalExecutor};

    let scenario = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 80, seed: 23 },
        ..Default::default()
    });
    let mut w = wrangler(&scenario, Evaluation::Incremental, Parallelism::Sequential);
    w.run().expect("bootstrap succeeds");
    let mapping = w
        .kb()
        .get_mapping(w.kb().selected_mapping().expect("a mapping is selected"))
        .unwrap()
        .clone();

    let cfg = ExecuteConfig::default();
    let mut exec = IncrementalExecutor::default();
    exec.execute(&cfg, &mapping, w.kb()).unwrap();
    assert_eq!(exec.stats().full_runs, 1);

    // append one cloned row (existing postcode): the re-execution must be
    // a fast-path apply
    let source = mapping.sources[0].clone();
    let mut rel = w.kb().relation(&source).unwrap().clone();
    let mut values: Vec<Value> = rel.tuples()[0].iter().cloned().collect();
    values[1] = Value::str("1 delta row");
    rel.push(Tuple::new(values)).unwrap();
    w.kb_mut().register_source(rel);

    let incremental = exec.execute(&cfg, &mapping, w.kb()).unwrap();
    assert_eq!(exec.stats().incremental_runs, 1, "{:?}", exec.stats());
    // and byte-identical to scratch
    let scratch = vada_map::execute_mapping(&cfg, &mapping, w.kb()).unwrap();
    assert_eq!(incremental.tuples(), scratch.tuples());
}

/// A failing delta pass must surface as an engine error, leave the
/// journal consistent, and let the next full run succeed — the orchestror
/// analogue of the datalog-level poisoning tests.
#[test]
fn delta_path_failure_recovers_via_full_run() {
    use vada_common::{Relation, Schema};
    use vada_kb::{KnowledgeBase, MappingDef};
    use vada_map::{ExecuteConfig, IncrementalExecutor};

    let mut kb = KnowledgeBase::new();
    let mut src = Relation::empty(Schema::all_str("s", &["a"]));
    src.push(Tuple::new(vec![Value::Int(1)])).unwrap();
    kb.register_source(src.clone());
    kb.register_target_schema(Schema::all_str("t", &["a"]));
    let mapping = MappingDef {
        id: "m".into(),
        target: "t".into(),
        rules: "t(Y) :- s(X), Y = X + 1.".into(),
        sources: vec!["s".into()],
        matches_used: vec![],
    };
    let cfg = ExecuteConfig::default();
    let mut exec = IncrementalExecutor::default();
    exec.execute(&cfg, &mapping, &kb).unwrap();
    let journal_before = kb.drain_deltas_since(0).unwrap().len();

    // poison row: the delta pass errors mid-way
    src.push(Tuple::new(vec![Value::str("boom")])).unwrap();
    kb.register_source(src);
    let err = exec.execute(&cfg, &mapping, &kb).unwrap_err();
    assert_eq!(err.kind(), "eval", "{err}");
    // reading the journal never mutates it: the failed run added exactly
    // the one append event, nothing was rolled back or duplicated
    assert_eq!(kb.drain_deltas_since(0).unwrap().len(), journal_before + 1);

    // drop the poison row (a replacement) and the next run succeeds fully
    let mut fixed = Relation::empty(Schema::all_str("s", &["a"]));
    fixed.push(Tuple::new(vec![Value::Int(1)])).unwrap();
    fixed.push(Tuple::new(vec![Value::Int(2)])).unwrap();
    kb.register_source(fixed);
    let rel = exec.execute(&cfg, &mapping, &kb).unwrap();
    assert_eq!(rel.len(), 2);
    let scratch = vada_map::execute_mapping(&cfg, &mapping, &kb).unwrap();
    assert_eq!(rel.tuples(), scratch.tuples());
}
