//! Scenario-fidelity tests: the matchers recover the ground-truth
//! correspondences of the paper's scenario, the format transformations
//! survive the pipeline, and the feedback oracle agrees with the scoring.

use vada::Wrangler;
use vada_extract::sources::{source_attrs, target_schema};
use vada_extract::{Oracle, Scenario, ScenarioConfig, UniverseConfig};
use vada_kb::{ContextKind, Verdict};

fn scenario() -> Scenario {
    Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 80, seed: 17 },
        ..Default::default()
    })
}

/// The true correspondences for the varied-name source.
fn ground_truth_matches() -> Vec<(&'static str, &'static str)> {
    vec![
        ("asking_price", "price"),
        ("street_name", "street"),
        ("post_code", "postcode"),
        ("beds", "bedrooms"),
        ("property_type", "type"),
        ("details", "description"),
    ]
}

#[test]
fn schema_matching_recovers_varied_names() {
    let s = scenario();
    let mut w = Wrangler::new();
    w.add_source(s.onthemarket.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap");
    for (src, tgt) in ground_truth_matches() {
        let best = w
            .kb()
            .matches()
            .filter(|m| m.src_rel == "onthemarket" && m.src_attr == src)
            .max_by(|a, b| a.score.total_cmp(&b.score));
        let best = best.unwrap_or_else(|| panic!("no match at all for {src}"));
        assert_eq!(
            best.tgt_attr, tgt,
            "best match for onthemarket.{src} should be {tgt}, got {} ({:.2})",
            best.tgt_attr, best.score
        );
    }
}

#[test]
fn source_attr_fixture_is_consistent() {
    let (rm, otm) = source_attrs(true);
    assert_eq!(rm.len(), otm.len());
    let (rm2, otm2) = source_attrs(false);
    assert_eq!(rm2, otm2);
}

#[test]
fn price_formats_are_normalised_in_the_result() {
    let s = scenario();
    let mut w = Wrangler::new();
    w.add_source(s.rightmove.clone());
    w.add_source(s.onthemarket.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap");
    let result = w.result().expect("result");
    let idx = result.schema().index_of("price").expect("price attr");
    for t in result.iter() {
        if let Some(s) = t[idx].as_str() {
            panic!("price survived as string: {s:?}");
        }
    }
    // the sources definitely contained pretty-printed prices
    let pretty_inputs = s
        .rightmove
        .iter()
        .chain(s.onthemarket.iter())
        .filter(|t| t[0].as_str().is_some_and(|v| v.starts_with('£')))
        .count();
    assert!(pretty_inputs > 0, "scenario must exercise format drift");
}

#[test]
fn oracle_and_scorer_agree() {
    let s = scenario();
    let mut w = Wrangler::new();
    w.add_source(s.rightmove.clone());
    w.add_source(s.onthemarket.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap");
    w.add_data_context(
        s.address.clone(),
        ContextKind::Reference,
        &[("street", "street"), ("postcode", "postcode")],
    )
    .expect("context registers");
    w.run().expect("context step");
    let result = w.result().expect("result").clone();

    // annotate everything; the fraction of Correct verdicts must track the
    // scorer's cell precision on aligned rows
    let mut oracle = Oracle::new(&s.universe);
    let all = oracle.annotate(&result, usize::MAX, 1);
    let attr_verdicts: Vec<_> = all
        .iter()
        .filter(|f| matches!(f.target, vada_kb::FeedbackTarget::Attribute { .. }))
        .collect();
    assert!(!attr_verdicts.is_empty());
    let correct = attr_verdicts
        .iter()
        .filter(|f| f.verdict == Verdict::Correct)
        .count();
    let oracle_precision = correct as f64 / attr_verdicts.len() as f64;
    let scored = vada_extract::score_result(&s.universe, &result);
    assert!(
        (oracle_precision - scored.precision).abs() < 0.05,
        "oracle precision {oracle_precision:.3} vs scorer {:.3}",
        scored.precision
    );
}

#[test]
fn deprivation_coverage_bounds_crimerank_completeness() {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 80, seed: 18 },
        deprivation_coverage: 0.5,
        ..Default::default()
    });
    let mut w = Wrangler::new();
    w.add_source(s.rightmove.clone());
    w.add_source(s.onthemarket.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap");
    let result = w.result().expect("result");
    let completeness = result.completeness("crimerank").expect("attr exists");
    let covered_districts = s.deprivation.len() as f64;
    let all_districts = s.universe.crime_by_district.len() as f64;
    let coverage = covered_districts / all_districts;
    assert!(
        completeness <= coverage + 0.15,
        "crimerank completeness {completeness:.3} cannot materially exceed district coverage {coverage:.3}"
    );
}
