//! Differential tests for the parallel execution layer: every pipeline
//! entry point must produce output at `Threads(n)` that is byte-identical
//! to `Sequential` — same relations, same fact insertion order, same
//! trace (modulo wall-clock durations). This is the contract that makes
//! the `VADA_THREADS` override safe to flip in production.

use vada::{Parallelism, Wrangler};
use vada_common::{csv, Relation, Schema, Tuple, Value};
use vada_datalog::{parse_program, Database, Engine, EngineConfig};
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_fusion::{block_by_keys_with, cluster_relation_with, ClusterConfig, FieldKind, FieldSpec};
use vada_kb::ContextKind;

const LEVELS: [Parallelism; 3] =
    [Parallelism::Threads(2), Parallelism::Threads(4), Parallelism::Threads(8)];

/// Render everything observable about a wrangle: the result relation as
/// CSV bytes and the trace's stable fields (everything but duration).
fn observe(w: &Wrangler) -> (Option<String>, Vec<String>) {
    let result = w.result().map(csv::write_relation);
    let trace = w
        .trace()
        .entries()
        .iter()
        .map(|e| {
            format!(
                "#{} {} [{}] dep={} v{}->v{} writes={} {}",
                e.step,
                e.transducer,
                e.activity,
                e.input_dependency,
                e.kb_version_before,
                e.kb_version_after,
                e.writes,
                e.summary
            )
        })
        .collect();
    (result, trace)
}

/// Mapping ids (`map<N>`) come from a process-global counter, so their
/// absolute numbers depend on how many wrangles ran earlier in this test
/// process. Rewrite each distinct id to its first-seen ordinal so two runs
/// compare structurally while the order and count of ids stay pinned.
fn canonicalize_map_ids(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut seen: Vec<&str> = Vec::new();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if s[i..].starts_with("map") && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric()) {
            let start = i + 3;
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end > start {
                let id = &s[i..end];
                let ord = seen.iter().position(|x| *x == id).unwrap_or_else(|| {
                    seen.push(id);
                    seen.len() - 1
                });
                out.push_str(&format!("map#{ord}"));
                i = end;
                continue;
            }
        }
        let c = s[i..].chars().next().unwrap();
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// Drive the full pay-as-you-go pipeline (bootstrap, data context, user
/// context) at the given parallelism level.
fn wrangle(par: Parallelism) -> String {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 120, seed: 11 },
        ..Default::default()
    });
    let mut w = Wrangler::new();
    w.set_parallelism(par);
    w.add_source(s.rightmove.clone());
    w.add_source(s.onthemarket.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap succeeds");
    w.add_data_context(
        s.address.clone(),
        ContextKind::Reference,
        &[("street", "street"), ("postcode", "postcode")],
    )
    .expect("context registers");
    w.run().expect("context step succeeds");
    w.set_user_context(vec![vada_kb::PairwiseStatement {
        more_important: "completeness(crimerank)".into(),
        less_important: "completeness(bedrooms)".into(),
        strength: "strongly".into(),
    }]);
    w.run().expect("user-context step succeeds");
    let (result, trace) = observe(&w);
    // one shared id table across trace and result, so cross-line identity
    // of mapping ids is part of the comparison
    canonicalize_map_ids(&format!(
        "{}\n=== result ===\n{}",
        trace.join("\n"),
        result.expect("pipeline materialises a result")
    ))
}

#[test]
fn end_to_end_wrangle_is_identical_across_thread_counts() {
    let baseline = wrangle(Parallelism::Sequential);
    for par in LEVELS {
        assert_eq!(wrangle(par), baseline, "{par:?} diverged from Sequential");
    }
}

/// Dump a database fully: predicates in sorted order, facts in insertion
/// order — the order-sensitive view downstream components observe.
fn dump(db: &Database) -> String {
    let mut out = String::new();
    for pred in db.predicates() {
        for t in db.facts(pred) {
            out.push_str(&format!("{pred}{t:?}\n"));
        }
    }
    out
}

#[test]
fn datalog_fixpoint_is_identical_across_thread_counts() {
    // independent union rules, linear + non-linear recursion, negation,
    // aggregation, arithmetic, and an existential (skolem) head: every
    // evaluation path the engine has.
    let mut src = String::new();
    for i in 0..40 {
        src.push_str(&format!("edge({}, {}).\n", i, i + 1));
        src.push_str(&format!("label({i}, \"n{i}\").\n"));
    }
    src.push_str(
        r#"
        tc(X, Y) :- edge(X, Y).
        tc(X, Z) :- tc(X, Y), edge(Y, Z).
        even(0).
        even(Y) :- even(X), X < 40, Y = X + 2.
        named(X, N) :- label(X, N).
        tagged(X, T) :- label(X, N), T = "tag " + N.
        unreached(X) :- label(X, _), not tc(0, X).
        fan(X, Y) :- tc(X, Y), X < 3.
        stats(count(Y), max(Y)) :- tc(0, Y).
        owner(X, Z) :- label(X, _).
        "#,
    );
    let program = parse_program(&src).unwrap();
    let run = |par: Parallelism| {
        let engine = Engine::new(EngineConfig { parallelism: par, ..Default::default() });
        dump(&engine.run(&program, Database::new()).unwrap())
    };
    let baseline = run(Parallelism::Sequential);
    assert!(baseline.contains("tc"));
    for par in LEVELS {
        assert_eq!(run(par), baseline, "{par:?} diverged from Sequential");
    }
}

fn synthetic_listings(n: usize) -> Relation {
    let mut rel = Relation::empty(Schema::all_str(
        "listings",
        &["street", "price", "postcode"],
    ));
    for i in 0..n {
        let district = i % 17;
        let street = format!("{} high st", i / 3);
        // every third row is a near-duplicate with noisy casing/price
        let (street, price) = if i % 3 == 2 {
            (street.to_uppercase() + ".", format!("{}", 100_000 + (i / 3) * 7 + 1))
        } else {
            (street, format!("{}", 100_000 + (i / 3) * 7))
        };
        let postcode = if i % 29 == 0 {
            Value::Null
        } else {
            Value::str(format!("M{district} {}AA", i % 5))
        };
        rel.push(Tuple::new(vec![Value::str(street), Value::str(price), postcode]))
            .unwrap();
    }
    rel
}

#[test]
fn fusion_blocking_and_clustering_identical_across_thread_counts() {
    let rel = synthetic_listings(900);
    let cfg = ClusterConfig {
        block_keys: vec!["postcode".into()],
        fields: vec![
            FieldSpec { col: 0, weight: 3.0, kind: FieldKind::Text },
            FieldSpec { col: 1, weight: 1.0, kind: FieldKind::Numeric },
        ],
        threshold: 0.9,
    };
    let blocks_seq = block_by_keys_with(&rel, &["postcode"], Parallelism::Sequential).unwrap();
    let clusters_seq = cluster_relation_with(&cfg, &rel, Parallelism::Sequential).unwrap();
    assert!(clusters_seq.iter().any(|c| c.len() > 1), "fixture has duplicates");
    for par in LEVELS {
        assert_eq!(
            block_by_keys_with(&rel, &["postcode"], par).unwrap(),
            blocks_seq,
            "{par:?} blocking diverged"
        );
        assert_eq!(
            cluster_relation_with(&cfg, &rel, par).unwrap(),
            clusters_seq,
            "{par:?} clustering diverged"
        );
    }
}

#[test]
fn csv_ingest_identical_across_thread_counts() {
    let rel = synthetic_listings(700);
    let text = csv::write_relation(&rel);
    let seq =
        csv::read_relation_with(&text, rel.schema().clone(), Parallelism::Sequential).unwrap();
    for par in LEVELS {
        let got = csv::read_relation_with(&text, rel.schema().clone(), par).unwrap();
        assert_eq!(got.tuples(), seq.tuples(), "{par:?} ingest diverged");
    }
}

/// On divergence, point at the first differing line rather than dumping
/// two multi-thousand-line observations.
#[test]
#[ignore = "diagnostic helper: run with --ignored when the main test fails"]
fn debug_divergence() {
    let a = wrangle(Parallelism::Sequential);
    let b = wrangle(Parallelism::Threads(2));
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            println!("line {i}:\n  seq: {la}\n  par: {lb}");
        }
    }
    println!("lines: {} vs {}", a.lines().count(), b.lines().count());
}
