//! Invariants of the dynamic orchestration (paper §2.3–2.4): dependency
//! gating, activity ordering under the generic policy, trace integrity,
//! and extensibility with user transducers.

use vada::{Activity, GenericPolicy, RunOutcome, Transducer, Wrangler};
use vada_common::{tuple, Relation, Result, Schema};
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};
use vada_kb::{ContextKind, KnowledgeBase};

fn scenario() -> Scenario {
    Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 60, seed: 8 },
        ..Default::default()
    })
}

fn run_full(w: &mut Wrangler, s: &Scenario) {
    w.add_source(s.rightmove.clone());
    w.add_source(s.onthemarket.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap");
    w.add_data_context(
        s.address.clone(),
        ContextKind::Reference,
        &[("street", "street"), ("postcode", "postcode")],
    )
    .expect("context");
    w.run().expect("context step");
}

#[test]
fn trace_versions_are_monotone_and_writes_consistent() {
    let s = scenario();
    let mut w = Wrangler::new();
    run_full(&mut w, &s);
    let mut prev_end = 0;
    for e in w.trace().entries() {
        assert!(e.kb_version_before >= prev_end, "trace out of order at #{}", e.step);
        assert!(e.kb_version_after >= e.kb_version_before);
        if e.writes == 0 {
            // noop runs may still record vetoes etc., but a plain noop must
            // not claim progress it didn't make: version growth implies a
            // summary mentioning what was written
            assert!(
                e.kb_version_after == e.kb_version_before || !e.summary.is_empty(),
                "#{}: silent version bump",
                e.step
            );
        }
        prev_end = e.kb_version_after;
    }
}

#[test]
fn steps_numbered_densely() {
    let s = scenario();
    let mut w = Wrangler::new();
    run_full(&mut w, &s);
    for (i, e) in w.trace().entries().iter().enumerate() {
        assert_eq!(e.step, i);
    }
}

#[test]
fn no_transducer_fires_before_its_dependencies() {
    let s = scenario();
    let mut w = Wrangler::new();
    run_full(&mut w, &s);
    let names: Vec<&str> = w
        .trace()
        .entries()
        .iter()
        .map(|e| e.transducer.as_str())
        .collect();
    let first = |name: &str| names.iter().position(|n| *n == name);
    // the structural chain of Table 1
    let matching = first("schema_matching").expect("matching ran");
    let generation = first("mapping_generation").expect("generation ran");
    let quality = first("mapping_quality").expect("quality ran");
    let selection = first("mapping_selection").expect("selection ran");
    let execution = first("mapping_execution").expect("execution ran");
    assert!(matching < generation, "matches precede mappings");
    assert!(generation < quality, "mappings precede their metrics");
    assert!(quality < selection, "metrics precede selection");
    assert!(selection < execution, "selection precedes execution");
    // context-gated transducers only fire after the context step; the
    // bootstrap prefix must not contain them
    let context_step_start = names
        .iter()
        .position(|n| *n == "instance_matching" || *n == "cfd_learning")
        .expect("context transducers ran");
    assert!(execution < context_step_start);
}

#[test]
fn generic_policy_orders_by_activity_within_a_burst() {
    let s = scenario();
    let mut w = Wrangler::with_policy(Box::new(GenericPolicy));
    w.add_source(s.rightmove.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap");
    // within the bootstrap burst, the first matching transducer precedes
    // the first quality transducer
    let entries = w.trace().entries();
    let first_matching = entries
        .iter()
        .position(|e| e.activity == Activity::Matching)
        .expect("matching ran");
    let first_quality = entries
        .iter()
        .position(|e| e.activity == Activity::Quality)
        .expect("quality ran");
    assert!(first_matching < first_quality);
}

/// A user-defined transducer: counts result rows into a quality fact (the
/// paper: "developers can contribute ... by adding in new components as
/// transducers").
#[derive(Debug, Default)]
struct RowCounter {
    runs: std::cell::Cell<usize>,
}

impl Transducer for RowCounter {
    fn name(&self) -> &str {
        "row_counter"
    }
    fn activity(&self) -> Activity {
        Activity::Quality
    }
    fn input_dependency(&self) -> &str {
        "result_available(_)"
    }
    fn input_aspects(&self) -> &'static [&'static str] {
        &["result"]
    }
    fn run(&mut self, kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        self.runs.set(self.runs.get() + 1);
        let target = kb.target_schema().expect("target").name.clone();
        let rows = kb.relation(&target)?.len();
        kb.add_quality(vada_kb::QualityFact {
            entity_kind: "result".into(),
            entity: target,
            metric: "rows".into(),
            criterion: "rows(property)".into(),
            value: rows as f64,
        });
        Ok(RunOutcome::new(format!("{rows} rows"), 1))
    }
}

#[test]
fn custom_transducers_join_the_fleet() {
    let s = scenario();
    let mut fleet = vada::default_transducers();
    fleet.push(Box::new(RowCounter::default()));
    let mut w = Wrangler::with_transducers(fleet);
    w.add_source(s.rightmove.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap with custom transducer");
    assert!(w
        .trace()
        .entries()
        .iter()
        .any(|e| e.transducer == "row_counter"));
    assert!(w
        .kb()
        .quality_facts()
        .iter()
        .any(|q| q.metric == "rows" && q.value > 0.0));
}

#[test]
fn small_sources_still_converge() {
    // degenerate inputs must not wedge the orchestrator
    let mut w = Wrangler::new();
    let mut rm = Relation::empty(Schema::all_str("rightmove", &["price", "street", "postcode"]));
    rm.push(tuple!["1", "a st", "M1 1AA"]).unwrap();
    w.add_source(rm);
    w.set_target(target_schema());
    let report = w.run().expect("tiny input converges");
    assert!(report.executed > 0);
    assert!(w.result().is_some());
}
