//! Failure injection: a transducer that errors must fail the orchestration
//! with a diagnostic naming it, without corrupting the knowledge base, and
//! degenerate inputs must produce errors rather than wrong results.

use vada::{Activity, Parallelism, RunOutcome, Transducer, Wrangler};
use vada_common::{tuple, Relation, Result, Schema, VadaError};
use vada_kb::KnowledgeBase;

/// Fails on its first run, succeeds afterwards.
#[derive(Debug, Default)]
struct Flaky {
    attempts: usize,
}

impl Transducer for Flaky {
    fn name(&self) -> &str {
        "flaky"
    }
    fn activity(&self) -> Activity {
        Activity::Quality
    }
    fn input_dependency(&self) -> &str {
        r#"relation(_, "source", _)"#
    }
    fn input_aspects(&self) -> &'static [&'static str] {
        &["relations"]
    }
    fn run(&mut self, _kb: &mut KnowledgeBase) -> Result<RunOutcome> {
        self.attempts += 1;
        if self.attempts == 1 {
            Err(VadaError::Transducer("synthetic fault".into()))
        } else {
            Ok(RunOutcome::noop("recovered"))
        }
    }
}

#[test]
fn failing_transducer_is_named_and_kb_survives() {
    let mut w = Wrangler::with_transducers(vec![Box::new(Flaky::default())]);
    let mut src = Relation::empty(Schema::all_str("s", &["a"]));
    src.push(tuple!["x"]).unwrap();
    w.add_source(src);
    let err = w.run().unwrap_err();
    assert!(err.to_string().contains("flaky"), "{err}");
    assert!(err.to_string().contains("synthetic fault"));
    // the knowledge base is still usable and a retry proceeds
    assert!(w.kb().relation("s").is_ok());
    let report = w.run().expect("second attempt recovers");
    assert_eq!(report.executed, 1);
}

#[test]
fn malformed_mapping_rules_surface_as_errors() {
    use vada_kb::MappingDef;
    use vada_map::{execute_mapping, ExecuteConfig};
    let mut kb = KnowledgeBase::new();
    let mut src = Relation::empty(Schema::all_str("s", &["a"]));
    src.push(tuple!["x"]).unwrap();
    kb.register_source(src);
    kb.register_target_schema(Schema::all_str("t", &["a"]));
    let broken = MappingDef {
        id: "bad".into(),
        target: "t".into(),
        rules: "t(X :- s(X).".into(), // syntax error
        sources: vec!["s".into()],
        matches_used: vec![],
    };
    let err = execute_mapping(&ExecuteConfig::default(), &broken, &kb).unwrap_err();
    assert_eq!(err.kind(), "parse");
}

#[test]
fn unknown_source_in_mapping_is_a_kb_error() {
    use vada_kb::MappingDef;
    use vada_map::{execute_mapping, ExecuteConfig};
    let mut kb = KnowledgeBase::new();
    kb.register_target_schema(Schema::all_str("t", &["a"]));
    let mapping = MappingDef {
        id: "m".into(),
        target: "t".into(),
        rules: "t(X) :- ghost(X).".into(),
        sources: vec!["ghost".into()],
        matches_used: vec![],
    };
    let err = execute_mapping(&ExecuteConfig::default(), &mapping, &kb).unwrap_err();
    assert_eq!(err.kind(), "kb");
    assert!(err.to_string().contains("ghost"));
}

#[test]
fn empty_sources_produce_empty_but_valid_results() {
    let mut w = Wrangler::new();
    w.add_source(Relation::empty(Schema::all_str(
        "rightmove",
        &["price", "street", "postcode"],
    )));
    w.set_target(Schema::all_str("property", &["street", "postcode", "price"]));
    // an empty source has no instances: matching is schema-only, the
    // mapping executes to zero rows, nothing panics
    w.run().expect("empty sources orchestrate cleanly");
    if let Some(result) = w.result() {
        assert!(result.is_empty());
    }
}

#[test]
fn panicking_similarity_errors_instead_of_hanging_and_names_the_stage() {
    use vada_common::Value;
    use vada_fusion::{cluster_relation_scored, record_similarity, ClusterConfig, FieldKind, FieldSpec};

    let mut rel = Relation::empty(Schema::all_str("r", &["street", "postcode"]));
    for i in 0..200 {
        rel.push(tuple![format!("{} high st", i / 2), "M1 1AA"]).unwrap();
    }
    rel.push(tuple!["POISON", "M1 1AA"]).unwrap();
    let cfg = ClusterConfig {
        block_keys: vec!["postcode".into()],
        fields: vec![FieldSpec { col: 0, weight: 1.0, kind: FieldKind::Text }],
        threshold: 0.9,
    };
    let scorer = |a: &vada_common::Tuple, b: &vada_common::Tuple| {
        let poisoned = |t: &vada_common::Tuple| t[0] == Value::str("POISON");
        if poisoned(a) || poisoned(b) {
            panic!("poisoned row reached the scorer");
        }
        record_similarity(&cfg.fields, a, b)
    };
    // the panic payload must come back as an error naming the offending
    // stage — from the worker threads just like from the sequential path,
    // never a deadlock or process abort
    for par in [Parallelism::Sequential, Parallelism::Threads(4), Parallelism::Threads(8)] {
        let err = cluster_relation_scored(&cfg, &rel, par, &scorer).unwrap_err();
        assert_eq!(err.kind(), "parallel", "{par:?}: {err}");
        assert!(err.message().contains("fusion/pairwise"), "{par:?}: {err}");
        assert!(err.message().contains("poisoned row"), "{par:?}: {err}");
    }
    // all parallelism levels report the same (lowest-pair-index) failure
    let seq = cluster_relation_scored(&cfg, &rel, Parallelism::Sequential, &scorer).unwrap_err();
    let par = cluster_relation_scored(&cfg, &rel, Parallelism::Threads(4), &scorer).unwrap_err();
    assert_eq!(seq, par);
}

#[test]
fn incremental_mode_survives_transducer_failure() {
    // a failing transducer under Evaluation::Incremental must surface the
    // same diagnostic as under Full, leave the knowledge base (and its
    // delta journal) usable, and let the retry proceed
    use vada::{Evaluation, OrchestratorConfig};
    let mut w = Wrangler::with_transducers(vec![Box::new(Flaky::default())]);
    w.set_orchestrator_config(OrchestratorConfig {
        evaluation: Evaluation::Incremental,
        ..OrchestratorConfig::default()
    });
    let mut src = Relation::empty(Schema::all_str("s", &["a"]));
    src.push(tuple!["x"]).unwrap();
    w.add_source(src);
    let journal_before = w.kb().journal().len();
    let err = w.run().unwrap_err();
    assert!(err.to_string().contains("flaky"), "{err}");
    // the journal recorded the registration and nothing from the failed
    // run — consistent for any incremental consumer that reads it next
    assert_eq!(w.kb().journal().len(), journal_before);
    let report = w.run().expect("retry recovers under incremental mode");
    assert_eq!(report.executed, 1);
}

#[test]
fn poisoned_incremental_session_refuses_deltas_until_rematerialized() {
    // the datalog layer's contract behind the recovery above: after a
    // failed delta pass the session is poisoned, every further apply is
    // refused, and a run_full over clean input restores service — the
    // journal side (owned by the KB) is never touched by the failure
    use vada_datalog::incremental::IncrementalSession;
    use vada_datalog::{Database, EngineConfig};
    let mut session =
        IncrementalSession::new(EngineConfig::default(), "q(Y) :- p(X), Y = X * 2.").unwrap();
    let mut input = Database::new();
    input.insert("p", tuple![2]);
    session.run_full(input.clone()).unwrap();
    let err = session
        .apply(vec![("p".into(), tuple!["not a number"])])
        .unwrap_err();
    assert_eq!(err.kind(), "eval", "{err}");
    let err = session.apply(vec![("p".into(), tuple![3])]).unwrap_err();
    assert!(err.message().contains("poisoned"), "{err}");
    session.run_full(input).unwrap();
    session.apply(vec![("p".into(), tuple![3])]).unwrap();
    assert_eq!(session.database().facts("q").len(), 2);
}

#[test]
fn panic_mid_dred_poisons_the_session_and_run_full_recovers() {
    // the deletion path's failure contract: a panic injected inside DRed's
    // over-deletion pass (captured by the parallel layer at every level)
    // poisons the session, every further delta or retraction is refused,
    // and the next run_full restores service
    use vada_datalog::incremental::{DeltaMode, IncrementalSession};
    use vada_datalog::{Database, EngineConfig};
    let mut input = Database::new();
    for i in 0..8i64 {
        input.insert("edge", tuple![i, i + 1]);
    }
    let mut session = IncrementalSession::new(
        EngineConfig::default(),
        "tc(X, Y) :- edge(X, Y). tc(X, Z) :- tc(X, Y), edge(Y, Z).",
    )
    .unwrap();
    session.run_full(input).unwrap();

    session.inject_fault(Some("dred-overdelete"));
    let err = session.retract(vec![("edge".into(), tuple![3i64, 4i64])]).unwrap_err();
    assert_eq!(err.kind(), "parallel", "{err}");
    assert!(err.message().contains("injected fault"), "{err}");
    let err = session.apply(vec![("edge".into(), tuple![20i64, 21i64])]).unwrap_err();
    assert!(err.message().contains("poisoned"), "{err}");
    let err = session.retract(vec![("edge".into(), tuple![0i64, 1i64])]).unwrap_err();
    assert!(err.message().contains("poisoned"), "{err}");

    // recovery: run_full over the post-retraction base (the failed retract
    // had already removed edge(3,4) from the accumulated input)
    session.inject_fault(None);
    let mut shrunk = Database::new();
    for i in 0..8i64 {
        if i != 3 {
            shrunk.insert("edge", tuple![i, i + 1]);
        }
    }
    session.run_full(shrunk).unwrap();
    session.retract(vec![("edge".into(), tuple![6i64, 7i64])]).unwrap();
    assert_eq!(session.last_outcome().unwrap().mode, DeltaMode::Incremental);
}

#[test]
fn failed_deletion_leaves_the_kb_journal_consistent() {
    // a deletion-path failure lives entirely inside the consumer session:
    // the knowledge-base journal records exactly the row-level retraction
    // event and stays readable for any other consumer
    use vada_kb::DeltaChange;
    let mut kb = KnowledgeBase::new();
    let mut src = Relation::empty(Schema::all_str("edges", &["a", "b"]));
    for i in 0..5i64 {
        src.push(tuple![format!("{i}"), format!("{}", i + 1)]).unwrap();
    }
    kb.register_source(src);
    let seen = kb.version();
    let removed = kb.remove_rows("edges", &[2]).unwrap();
    assert_eq!(removed.len(), 1);

    // a consumer session that fails mid-retraction does not touch the journal
    use vada_datalog::incremental::IncrementalSession;
    use vada_datalog::{Database, EngineConfig};
    let mut input = Database::new();
    input.insert("e", tuple![1]);
    let mut session =
        IncrementalSession::new(EngineConfig::default(), "q(X) :- e(X), f(X).").unwrap();
    session.run_full(input).unwrap();
    session.inject_fault(Some("retract-enumerate"));
    // arm a failure and retract a fact that reaches the enumeration pass
    let mut input2 = Database::new();
    input2.insert("e", tuple![1]);
    input2.insert("f", tuple![1]);
    session.run_full(input2).unwrap();
    assert!(session.retract(vec![("e".into(), tuple![1])]).is_err());

    let events = kb.drain_deltas_since(seen).expect("window covers the removal");
    assert_eq!(events.len(), 1, "exactly the one retraction event");
    match &events[0].change {
        DeltaChange::RowsRemoved { relation, rows, .. } => {
            assert_eq!(relation, "edges");
            assert_eq!(rows, &removed);
        }
        other => panic!("expected RowsRemoved, got {other:?}"),
    }
    // the journal is still append-only readable from zero
    assert!(kb.drain_deltas_since(0).is_some());
}

/// A partitioner that panics on demand — the injection seam for the
/// per-shard scan failure contract.
#[derive(Debug)]
struct PoisonPartitioner {
    armed: std::sync::atomic::AtomicBool,
}

impl vada_common::Partitioner for PoisonPartitioner {
    fn name(&self) -> &str {
        "poison"
    }
    fn shard_of(&self, tuple: &vada_common::Tuple, shards: usize) -> usize {
        if self.armed.load(std::sync::atomic::Ordering::Relaxed)
            && tuple[0] == vada_common::Value::str("POISON")
        {
            panic!("poisoned row reached the partitioner");
        }
        vada_common::HashPartitioner.shard_of(tuple, shards)
    }
}

#[test]
fn panic_inside_a_per_shard_scan_names_the_stage_and_poisons_nothing() {
    use vada::{Parallelism, Sharding};
    use vada_kb::{ShardedStore, SyncMode};

    let mut kb = KnowledgeBase::new();
    let mut src = Relation::empty(Schema::all_str("s", &["a"]));
    for i in 0..64 {
        src.push(tuple![format!("row {i}")]).unwrap();
    }
    src.push(tuple!["POISON"]).unwrap();
    kb.register_source(src);
    let seen = kb.version();

    let partitioner = std::sync::Arc::new(PoisonPartitioner {
        armed: std::sync::atomic::AtomicBool::new(true),
    });
    // the panic must come back as an error naming the shard stage — from
    // worker threads just like from the sequential path, never a hang or
    // abort — and identically at every parallelism level
    let mut first: Option<vada_common::VadaError> = None;
    for par in [Parallelism::Sequential, Parallelism::Threads(4), Parallelism::Threads(8)] {
        let mut store = ShardedStore::with_partitioner(Sharding::Shards(4), partitioner.clone());
        store.set_parallelism(par);
        let err = store.sync(&kb).unwrap_err();
        assert_eq!(err.kind(), "parallel", "{par:?}: {err}");
        assert!(err.message().contains("kb/shard_partition"), "{par:?}: {err}");
        assert!(err.message().contains("poisoned row"), "{par:?}: {err}");
        match &first {
            None => first = Some(err),
            Some(e) => assert_eq!(e, &err, "{par:?} reported a different failure"),
        }
        // nothing poisoned: disarm the fault and the same store recovers
        // with a clean rebuild on the next sync
        partitioner.armed.store(false, std::sync::atomic::Ordering::Relaxed);
        let report = store.sync(&kb).unwrap();
        assert_eq!(report.mode, SyncMode::Rebuild);
        assert_eq!(
            store.view("s").unwrap().merge().tuples(),
            kb.relation("s").unwrap().tuples()
        );
        partitioner.armed.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    // the journal was never touched by the failed scans: it still serves
    // the full slice to any consumer
    assert!(kb.drain_deltas_since(seen).unwrap().is_empty());
    assert!(kb.drain_deltas_since(0).is_some());

    // and a failed sync mid-history does not leave half-applied views:
    // the next successful sync reflects edits made while poisoned
    partitioner.armed.store(false, std::sync::atomic::Ordering::Relaxed);
    let mut store = ShardedStore::with_partitioner(Sharding::Shards(4), partitioner.clone());
    store.sync(&kb).unwrap();
    partitioner.armed.store(true, std::sync::atomic::Ordering::Relaxed);
    let mut grown = kb.relation("s").unwrap().clone();
    grown.push(tuple!["POISON"]).unwrap();
    kb.register_source(grown);
    // RowsAppended routing hits the armed partitioner and fails...
    assert!(store.sync(&kb).unwrap_err().message().contains("poisoned row"));
    // ...but the store recovers to exactly the canonical state
    partitioner.armed.store(false, std::sync::atomic::Ordering::Relaxed);
    assert_eq!(store.sync(&kb).unwrap().mode, SyncMode::Rebuild);
    assert_eq!(
        store.view("s").unwrap().merge().tuples(),
        kb.relation("s").unwrap().tuples()
    );
}

#[test]
fn divergent_user_datalog_is_rejected_not_hung() {
    // a user-supplied mapping with a non-warded existential cycle must be
    // stopped by the chase guard
    use vada_datalog::{parse_program, Database, Engine, EngineConfig};
    let program = parse_program(
        "seed(1). p(X, Z) :- seed(X). seed(Z) :- p(_, Z).",
    )
    .unwrap();
    let engine = Engine::new(EngineConfig { max_skolem_depth: 6, ..Default::default() });
    let err = engine.run(&program, Database::new()).unwrap_err();
    assert!(err.to_string().contains("termination guard"), "{err}");
}
