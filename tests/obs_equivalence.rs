//! Differential tests for the observability layer: the **structural**
//! counters (the `pipeline.*` names) must be byte-identical across the
//! whole `{parallelism} × {sharding} × {evaluation} × {query mode} ×
//! {durability}` knob matrix — observability observes the pipeline's
//! semantic structure, never its scheduling — and a broken or panicking
//! export sink must never change a single byte of the wrangling result.
//! This is the contract that makes the `VADA_OBS` override safe to flip
//! in production.

use std::collections::BTreeMap;
use std::sync::Mutex;

use vada::{Evaluation, OrchestratorConfig, Parallelism, Sharding, Wrangler};
use vada_common::obs::{span_shape, structural_span_shape, Json, Obs, ObsSink};
use vada_common::{csv, QueryCaching, Result, VadaError};
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};

/// Serialises the tests in this binary around the env-read knob
/// defaults: `QueryMode::default()` reads `VADA_MAGIC` at component
/// construction, and the durability / export defaults come from
/// `VADA_WAL` / `VADA_OBS` — so every Wrangler in this file is built
/// under the lock with all three pinned (the tests drive durability and
/// export explicitly; an ambient CI leg must not re-enable them).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn with_query_mode<T>(directed: bool, f: impl FnOnce() -> T) -> T {
    let _g = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    std::env::remove_var("VADA_WAL");
    std::env::remove_var("VADA_OBS");
    // the caching knob is driven explicitly via set_query_caching below;
    // an ambient all-knobs CI leg must not skew individual legs
    std::env::remove_var("VADA_QUERY_CACHE");
    if directed {
        std::env::set_var("VADA_MAGIC", "directed");
    } else {
        std::env::remove_var("VADA_MAGIC");
    }
    let out = f();
    std::env::remove_var("VADA_MAGIC");
    out
}

/// What one wrangle leaves behind: the result catalog (byte-for-byte),
/// the registry's counters (split structural / full), and the span tree
/// in both renderings — the structural slice (`orchestrator/` spans,
/// pinned across the whole matrix) and the full deep tree (pinned across
/// thread counts for each fixed knob combination).
struct Observed {
    catalog: String,
    structural: BTreeMap<String, u64>,
    counters: BTreeMap<String, u64>,
    structural_spans: Vec<String>,
    full_spans: Vec<String>,
}

/// Mapping ids (`map<N>`) come from a process-global counter, so their
/// absolute numbers depend on how many wrangles ran earlier in this
/// process; rank the distinct ids and rewrite each to `map#<rank>` so
/// catalogs from different legs compare byte-for-byte (same scheme as
/// `shard_equivalence`).
fn canonicalize_map_ids(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut ids: std::collections::BTreeSet<u64> = Default::default();
    let mut i = 0;
    while i < bytes.len() {
        if s[i..].starts_with("map") && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric()) {
            let start = i + 3;
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end > start {
                ids.insert(s[start..end].parse().unwrap());
                i = end;
                continue;
            }
        }
        i += s[i..].chars().next().unwrap().len_utf8();
    }
    let ranks: BTreeMap<u64, usize> = ids.into_iter().enumerate().map(|(r, id)| (id, r)).collect();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if s[i..].starts_with("map") && (i == 0 || !bytes[i - 1].is_ascii_alphanumeric()) {
            let start = i + 3;
            let mut end = start;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
            if end > start {
                let id: u64 = s[start..end].parse().unwrap();
                out.push_str(&format!("map#{}", ranks[&id]));
                i = end;
                continue;
            }
        }
        let c = s[i..].chars().next().unwrap();
        out.push(c);
        i += c.len_utf8();
    }
    out
}

/// Drive the pay-as-you-go pipeline (bootstrap, data context, an edit
/// phase, a re-run) under one knob combination with a live registry.
fn wrangle(
    par: Parallelism,
    sharding: Sharding,
    eval: Evaluation,
    wal: bool,
    caching: QueryCaching,
) -> Observed {
    let s = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 60, seed: 11 },
        ..Default::default()
    });
    let mut w = Wrangler::new();
    if wal {
        let dir = std::env::temp_dir().join(format!(
            "vada-obs-equivalence-{}-{par:?}-{sharding:?}-{eval:?}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        w.set_durability(vada_common::Durability::Wal(dir)).expect("durable dir initialises");
    }
    w.set_orchestrator_config(OrchestratorConfig {
        parallelism: par,
        sharding,
        evaluation: eval,
        ..OrchestratorConfig::default()
    });
    w.set_query_caching(caching);
    w.set_obs(Obs::enabled());
    w.add_source(s.rightmove.clone());
    w.add_source(s.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("bootstrap succeeds");
    w.add_data_context(
        s.address.clone(),
        vada_kb::ContextKind::Reference,
        &[("street", "street"), ("postcode", "postcode")],
    )
    .expect("context registers");
    w.run().expect("context step succeeds");
    // an edit phase so the incremental legs exercise both the fast path
    // and the fallback machinery
    w.remove_source_rows("rightmove", &[1, 3]).expect("removal applies");
    w.run().expect("edit re-run succeeds");

    let sections: Vec<String> = w
        .kb()
        .catalog()
        .entries()
        .map(|(name, kind, rel)| {
            format!("=== {name} [{}] ===\n{}", kind.tag(), csv::write_relation(rel))
        })
        .collect();
    let mut sections: Vec<String> =
        canonicalize_map_ids(&sections.join("\x1e")).split('\x1e').map(String::from).collect();
    sections.sort();
    let catalog = sections.join("");
    let obs = w.obs();
    let records = obs.span_records();
    // span attrs carry mapping ids (`mapping=map<N>`) from the same
    // process-global counter as the catalog — rank-rewrite them the same
    // way so trees from different legs compare byte-for-byte
    let canonical_lines = |lines: Vec<String>| -> Vec<String> {
        canonicalize_map_ids(&lines.join("\n")).split('\n').map(String::from).collect()
    };
    Observed {
        catalog,
        structural: obs.structural_counters(),
        counters: obs.counters(),
        structural_spans: canonical_lines(structural_span_shape(&records)),
        full_spans: canonical_lines(span_shape(&records)),
    }
}

/// The headline pin: every knob combination tallies the same structural
/// counters — and materialises the same catalog — as sequential /
/// unsharded / full / undirected / in-memory.
#[test]
fn structural_counters_identical_across_the_knob_matrix() {
    let baseline = with_query_mode(false, || {
        wrangle(
            Parallelism::Sequential,
            Sharding::Off,
            Evaluation::Full,
            false,
            QueryCaching::Off,
        )
    });
    assert!(
        baseline.structural.get("pipeline.orchestrator.steps").copied().unwrap_or(0) > 0,
        "the pipeline must take orchestrator steps: {:?}",
        baseline.structural
    );
    assert!(
        baseline.structural.get("pipeline.kb.events").copied().unwrap_or(0) > 0,
        "the pipeline must journal knowledge-base events: {:?}",
        baseline.structural
    );
    assert!(
        baseline.structural.keys().any(|k| k.starts_with("pipeline.activity.")),
        "activity tallies must be structural: {:?}",
        baseline.structural
    );
    // every structural name carries the pipeline prefix — nothing
    // mode-scoped leaked into the determinism contract
    assert!(baseline.structural.keys().all(|k| k.starts_with("pipeline.")));
    // the structural span slice is rooted and non-trivial: three runs,
    // each an `orchestrator/run` with `orchestrator/step` children
    assert_eq!(
        baseline.structural_spans.iter().filter(|l| l.contains("orchestrator/run")).count(),
        3,
        "each of the three wrangles roots one structural run span: {:?}",
        baseline.structural_spans
    );
    assert!(
        baseline.structural_spans.iter().any(|l| l.contains("orchestrator/step")),
        "step spans are structural: {:?}",
        baseline.structural_spans
    );
    assert!(
        baseline.structural_spans.iter().all(|l| {
            let name = l.split(' ').nth(2).unwrap_or("");
            name.starts_with("orchestrator/")
        }),
        "only orchestrator/ spans are structural: {:?}",
        baseline.structural_spans
    );
    // the full tree carries the deep mode-scoped spans below the steps
    assert!(
        baseline.full_spans.iter().any(|l| l.contains("datalog/run")),
        "deep datalog spans must be recorded: {:?}",
        baseline.full_spans
    );

    // full span trees per {sharding, eval, directed} combo: the tree is a
    // pure function of the knobs — thread counts must never change it
    let mut full_trees: BTreeMap<String, Vec<String>> = BTreeMap::new();
    full_trees.insert("Off-Full-false".into(), baseline.full_spans.clone());

    for par in [Parallelism::Sequential, Parallelism::Threads(4)] {
        for sharding in [Sharding::Off, Sharding::Shards(4)] {
            for eval in [Evaluation::Full, Evaluation::Incremental] {
                for directed in [false, true] {
                    if (par, sharding, eval, directed)
                        == (Parallelism::Sequential, Sharding::Off, Evaluation::Full, false)
                    {
                        continue;
                    }
                    let got = with_query_mode(directed, || {
                        wrangle(par, sharding, eval, false, QueryCaching::Off)
                    });
                    assert_eq!(
                        got.structural, baseline.structural,
                        "{par:?} × {sharding:?} × {eval:?} × directed={directed} \
                         diverged structurally"
                    );
                    assert_eq!(
                        got.catalog, baseline.catalog,
                        "{par:?} × {sharding:?} × {eval:?} × directed={directed} \
                         changed the catalog"
                    );
                    assert_eq!(
                        got.structural_spans, baseline.structural_spans,
                        "{par:?} × {sharding:?} × {eval:?} × directed={directed} \
                         changed the structural span tree"
                    );
                    let combo = format!("{sharding:?}-{eval:?}-{directed}");
                    match full_trees.get(&combo) {
                        None => {
                            full_trees.insert(combo, got.full_spans);
                        }
                        Some(tree) => assert_eq!(
                            &got.full_spans, tree,
                            "{par:?} changed the full span tree of {sharding:?} × \
                             {eval:?} × directed={directed}"
                        ),
                    }
                }
            }
        }
    }

    // the durability knob: a WAL-backed run is structurally identical too
    // (wal.* diagnostics appear, but only under the pipeline-neutral
    // mode-scoped namespace — and as wal/append spans in the full tree)
    let durable = with_query_mode(false, || {
        wrangle(Parallelism::Sequential, Sharding::Off, Evaluation::Full, true, QueryCaching::Off)
    });
    assert_eq!(durable.structural, baseline.structural, "WAL leg diverged structurally");
    assert_eq!(durable.catalog, baseline.catalog, "WAL leg changed the catalog");
    assert_eq!(
        durable.structural_spans, baseline.structural_spans,
        "WAL leg changed the structural span tree"
    );
    assert!(
        durable.counters.get("wal.appends").copied().unwrap_or(0) > 0,
        "the durable leg must tally WAL appends: {:?}",
        durable.counters
    );
    assert!(
        durable.full_spans.iter().any(|l| l.contains("wal/append")),
        "the durable leg must record wal/append spans: {:?}",
        durable.full_spans
    );
    assert!(
        !baseline.counters.contains_key("wal.appends"),
        "the in-memory leg must not: {:?}",
        baseline.counters
    );

    // the caching knob: persistent query caches never change the pipeline's
    // structural shape either — counters, catalog, or structural spans
    for (par, sharding, eval, directed) in [
        (Parallelism::Sequential, Sharding::Off, Evaluation::Full, false),
        (Parallelism::Threads(4), Sharding::Shards(4), Evaluation::Incremental, true),
    ] {
        let cached = with_query_mode(directed, || {
            wrangle(par, sharding, eval, false, QueryCaching::Persistent)
        });
        assert_eq!(
            cached.structural, baseline.structural,
            "cache leg {par:?} × {sharding:?} × {eval:?} × directed={directed} \
             diverged structurally"
        );
        assert_eq!(cached.catalog, baseline.catalog, "cache leg changed the catalog");
        assert_eq!(
            cached.structural_spans, baseline.structural_spans,
            "cache leg changed the structural span tree"
        );
    }
}

/// The exported JSON-lines stream: every line parses, the span tree is
/// rooted, and the final counter snapshot agrees with the programmatic
/// report byte-for-byte.
#[test]
fn exported_stream_parses_and_matches_the_report() {
    let path = std::env::temp_dir().join(format!(
        "vada-obs-equivalence-export-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let report = with_query_mode(false, || {
        let s = Scenario::generate(ScenarioConfig {
            universe: UniverseConfig { properties: 40, seed: 5 },
            ..Default::default()
        });
        let mut w = Wrangler::new();
        w.set_obs(Obs::at_path(path.clone()));
        w.add_source(s.rightmove.clone());
        w.add_source(s.deprivation.clone());
        w.set_target(target_schema());
        w.run().expect("bootstrap succeeds");
        w.obs_health().expect("file sink stays healthy");
        w.obs_report()
    });

    let text = std::fs::read_to_string(&path).expect("export file exists");
    let mut spans = 0usize;
    let mut last_counters = None;
    for line in text.lines() {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("unparseable line {line}: {e}"));
        match doc.get("type").and_then(|t| t.as_str()) {
            Some("span") => {
                spans += 1;
                assert!(doc.get("name").and_then(|n| n.as_str()).is_some());
            }
            Some("timing") => {
                assert!(doc.get("micros").and_then(|m| m.as_u64()).is_some());
            }
            Some("counters") => last_counters = Some(doc),
            other => panic!("unexpected line type {other:?} in {line}"),
        }
    }
    assert!(spans > 0, "the orchestrator must export per-step spans");
    let last = last_counters.expect("run() flushes a counter snapshot");
    let exported = last.get("counters").expect("counters payload");
    for (name, v) in &report.counters {
        assert_eq!(
            exported.get(name).and_then(|x| x.as_u64()),
            Some(*v),
            "exported `{name}` must match the programmatic report"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// A sink that fails after a few lines — the detach path.
struct FlakySink {
    written: usize,
}

impl ObsSink for FlakySink {
    fn write_line(&mut self, _line: &str) -> Result<()> {
        self.written += 1;
        if self.written > 3 {
            return Err(VadaError::Obs("injected sink failure".into()));
        }
        Ok(())
    }
}

/// A sink that panics outright — the catch_unwind path.
struct PanickingSink;

impl ObsSink for PanickingSink {
    fn write_line(&mut self, _line: &str) -> Result<()> {
        panic!("injected sink panic");
    }
}

/// Fault injection: a failing or panicking export sink detaches, surfaces
/// through `obs_health`, and never changes a byte of the wrangling result
/// — mirroring the `storage_health` contract exactly.
#[test]
fn broken_sinks_never_poison_the_run() {
    let run = |obs: Option<Obs>| {
        with_query_mode(false, || {
            let s = Scenario::generate(ScenarioConfig {
                universe: UniverseConfig { properties: 40, seed: 9 },
                ..Default::default()
            });
            let mut w = Wrangler::new();
            if let Some(obs) = obs {
                w.set_obs(obs);
            }
            w.add_source(s.rightmove.clone());
            w.add_source(s.deprivation.clone());
            w.set_target(target_schema());
            w.run().expect("wrangle succeeds despite the sink");
            let result = csv::write_relation(w.result().expect("result materialises"));
            let health = w.obs_health().err().map(|e| e.kind());
            let attached = w.obs().sink_attached();
            let steps = w.obs().get("pipeline.orchestrator.steps");
            (result, health, attached, steps)
        })
    };

    let (clean, clean_health, _, _) = run(None);
    assert_eq!(clean_health, None, "the disabled stub is always healthy");

    for (label, sink) in [
        ("flaky", Box::new(FlakySink { written: 0 }) as Box<dyn ObsSink>),
        ("panicking", Box::new(PanickingSink) as Box<dyn ObsSink>),
    ] {
        let (result, health, attached, steps) = run(Some(Obs::with_sink(sink)));
        assert_eq!(result, clean, "{label} sink changed the wrangling result");
        assert_eq!(health, Some("obs"), "{label} sink failure must surface sticky");
        assert!(!attached, "{label} sink must be detached after its first failure");
        assert!(steps > 0, "{label}: counters keep collecting after the detach");
    }
}
