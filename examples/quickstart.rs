//! Quickstart: wrangle two small CSV sources into a target schema with
//! zero configuration — the "automatic bootstrapping" step of the paper's
//! demonstration.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use vada::Wrangler;
use vada_common::{csv, AttrType, Obs, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // two listing sources as they might arrive from web extraction — note
    // the different attribute names and the messy price formats
    let rightmove = csv::read_relation(
        "price,street,postcode,bedrooms\n\
         250000,12 high street,M1 1AA,3\n\
         £315000,9 park road,M4 2BB,4\n\
         ,3 mill lane,M1 1AA,2\n",
        Schema::all_str("rightmove", &["price", "street", "postcode", "bedrooms"]),
    )?;
    let onthemarket = csv::read_relation(
        "asking_price,street_name,post_code,beds\n\
         412000,41 oak avenue,M20 3CC,5\n\
         250000,12 high street,M1 1AA,3\n",
        Schema::all_str(
            "onthemarket",
            &["asking_price", "street_name", "post_code", "beds"],
        ),
    )?;

    // the schema the analysis needs (paper Fig 2(b), trimmed)
    let target = Schema::new(
        "property",
        [
            ("street", AttrType::Str),
            ("postcode", AttrType::Str),
            ("bedrooms", AttrType::Int),
            ("price", AttrType::Int),
        ],
    )?;

    let mut wrangler = Wrangler::new();
    // collect pipeline counters even without a VADA_OBS export target
    // (under VADA_OBS the env-configured sink is already attached)
    if !wrangler.obs().is_enabled() {
        wrangler.set_obs(Obs::enabled());
    }
    wrangler.add_source(rightmove);
    wrangler.add_source(onthemarket);
    wrangler.set_target(target);

    // one call orchestrates matching, mapping generation, quality
    // measurement, selection, execution and fusion
    let report = wrangler.run()?;
    println!("transducers executed: {}", report.executed);
    println!("{}", wrangler.trace().render());

    let result = wrangler.result().expect("a result is materialised");
    println!("wrangled result ({} rows):", result.len());
    println!("{}", result.to_table(10));

    // what the pipeline did, as deterministic counters: the `pipeline.*`
    // names are byte-identical at every knob setting
    println!("{}", wrangler.obs_report().render());

    // the duplicate listing (12 high street) was fused; prices are typed
    // integers with the currency formatting stripped
    assert!(result.len() <= 4);
    Ok(())
}
