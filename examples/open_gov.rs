//! Open-government data scenario: enriching listings with deprivation
//! statistics through the district-level left-outer join, and measuring
//! how deprivation *coverage* drives crimerank completeness — the
//! completeness/coverage trade-off the paper's user context reasons about.
//!
//! ```text
//! cargo run --release --example open_gov
//! ```

use vada::Wrangler;
use vada_extract::sources::target_schema;
use vada_extract::{Scenario, ScenarioConfig, UniverseConfig};

fn run_with_coverage(coverage: f64) -> (usize, f64, f64) {
    let scenario = Scenario::generate(ScenarioConfig {
        universe: UniverseConfig { properties: 150, seed: 21 },
        deprivation_coverage: coverage,
        ..Default::default()
    });
    let mut w = Wrangler::new();
    w.add_source(scenario.rightmove.clone());
    w.add_source(scenario.onthemarket.clone());
    w.add_source(scenario.deprivation.clone());
    w.set_target(target_schema());
    w.run().expect("orchestration succeeds");

    let result = w.result().expect("result").clone();
    let crime_completeness = result
        .completeness("crimerank")
        .expect("crimerank attr exists");
    let q = vada_extract::score_result(&scenario.universe, &result);
    (scenario.deprivation.len(), crime_completeness, q.f1)
}

fn main() {
    println!("deprivation coverage sweep — crimerank completeness follows the data context\n");
    println!(
        "{:<22} {:<18} {:<22} {:<6}",
        "coverage requested", "deprivation rows", "crimerank completeness", "f1"
    );
    for coverage in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let (rows, crime, f1) = run_with_coverage(coverage);
        println!(
            "{:<22} {:<18} {:<22.3} {:<6.3}",
            format!("{:.0}%", coverage * 100.0),
            rows,
            crime,
            f1
        );
    }
    println!(
        "\nthe left-outer join keeps every property (other attributes are unaffected);\n\
         only the crimerank column tracks the open-data coverage"
    );
}
