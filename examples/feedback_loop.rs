//! Feedback convergence: repeated annotate→run rounds, showing the
//! paper's §2.3 loop — feedback enters the knowledge base, repairs the
//! result and (given enough evidence about a bad match) re-opens mapping
//! generation.
//!
//! ```text
//! cargo run --release --example feedback_loop
//! ```

use vada::Wrangler;
use vada_extract::sources::target_schema;
use vada_extract::{score_result, Oracle, Scenario, ScenarioConfig, UniverseConfig};
use vada_kb::ContextKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // make the bedrooms column aggressively wrong: the paper's "area of
    // the master bedroom as the number of bedrooms" defect at 40%
    let mut cfg = ScenarioConfig {
        universe: UniverseConfig { properties: 120, seed: 33 },
        ..Default::default()
    };
    cfg.rightmove_errors.bedroom_area_rate = 0.4;
    cfg.onthemarket_errors.bedroom_area_rate = 0.4;
    let scenario = Scenario::generate(cfg);

    let mut w = Wrangler::new();
    w.add_source(scenario.rightmove.clone());
    w.add_source(scenario.onthemarket.clone());
    w.add_source(scenario.deprivation.clone());
    w.set_target(target_schema());
    w.add_data_context(
        scenario.address.clone(),
        ContextKind::Reference,
        &[("street", "street"), ("postcode", "postcode")],
    )?;
    w.run()?;

    let mut oracle = Oracle::new(&scenario.universe);
    println!("round  annotations  vetoes  precision  beds-accuracy  beds-completeness");
    for round in 0..6 {
        let result = w.result().expect("result").clone();
        let q = score_result(&scenario.universe, &result);
        println!(
            "{round:<6} {:<12} {:<7} {:<10.4} {:<14.4} {:.4}",
            w.kb().feedback().len(),
            w.kb().vetoes().len(),
            q.precision,
            q.quality_of("bedrooms"),
            q.attr_completeness.get("bedrooms").copied().unwrap_or(0.0)
        );
        // 30 more annotations per round, different sample each time
        let records = oracle.annotate(&result, 30, 100 + round as u64);
        w.add_feedback(records);
        w.run()?;
    }
    let final_result = w.result().expect("result").clone();
    let q = score_result(&scenario.universe, &final_result);
    println!(
        "final  {:<12} {:<7} {:<10.4} {:<14.4} {:.4}",
        w.kb().feedback().len(),
        w.kb().vetoes().len(),
        q.precision,
        q.quality_of("bedrooms"),
        q.attr_completeness.get("bedrooms").copied().unwrap_or(0.0)
    );
    println!(
        "\nwith 40% bedroom-area defects, feedback exposed the bad matches; mapping\n\
         evaluation revised their scores below the mapping threshold, so regeneration\n\
         dropped the column entirely — trading bedrooms completeness for precision,\n\
         exactly the paper's §2.3 feedback loop"
    );
    println!("\nmatch-score revisions recorded in the trace:");
    for e in w.trace().entries().iter().filter(|e| e.transducer == "mapping_evaluation") {
        println!("  #{} {}", e.step, e.summary);
    }
    Ok(())
}

/// Small helper so the table reads naturally.
trait BedroomAccuracy {
    fn quality_of(&self, attr: &str) -> f64;
}

impl BedroomAccuracy for vada_extract::ResultQuality {
    fn quality_of(&self, attr: &str) -> f64 {
        self.attr_accuracy.get(attr).copied().unwrap_or(0.0)
    }
}
