//! The paper's full demonstration scenario (§3): property sales + open
//! government data, driven through all four pay-as-you-go steps, printing
//! the result quality after each.
//!
//! ```text
//! cargo run --release --example real_estate
//! ```

use vada::Wrangler;
use vada_context::user_context::paper_fig2d_statements;
use vada_extract::sources::target_schema;
use vada_extract::{score_result, Oracle, Scenario, ScenarioConfig};
use vada_kb::ContextKind;

fn print_quality(step: &str, wrangler: &Wrangler, scenario: &Scenario) {
    let result = wrangler.result().expect("result available");
    let q = score_result(&scenario.universe, result);
    println!(
        "{step:<16} rows {:>4}  precision {:.3}  recall {:.3}  f1 {:.3}",
        result.len(),
        q.precision,
        q.recall,
        q.f1
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // a synthetic world standing in for DIADEM extraction + open data
    let scenario = Scenario::generate(ScenarioConfig::default());
    let mut w = Wrangler::new();

    println!("=== step 1: automatic bootstrapping ===");
    w.add_source(scenario.rightmove.clone());
    w.add_source(scenario.onthemarket.clone());
    w.add_source(scenario.deprivation.clone());
    w.set_target(target_schema());
    w.run()?;
    print_quality("bootstrap", &w, &scenario);

    println!("\n=== step 2: data context (address reference data) ===");
    w.add_data_context(
        scenario.address.clone(),
        ContextKind::Reference,
        &[("street", "street"), ("postcode", "postcode")],
    )?;
    w.run()?;
    print_quality("+data context", &w, &scenario);
    println!(
        "CFDs learned: {}",
        w.kb().cfds().map(|c| c.display()).collect::<Vec<_>>().join("; ")
    );

    println!("\n=== step 3: feedback (80 annotations from the data scientist) ===");
    let result = w.result().expect("result").clone();
    let mut oracle = Oracle::new(&scenario.universe);
    let feedback = oracle.annotate(&result, 80, 7);
    let incorrect = feedback
        .iter()
        .filter(|f| f.verdict == vada_kb::Verdict::Incorrect)
        .count();
    println!("annotations: {} ({} incorrect)", feedback.len(), incorrect);
    w.add_feedback(feedback);
    w.run()?;
    print_quality("+feedback", &w, &scenario);

    println!("\n=== step 4: user context (Fig 2(d) priorities) ===");
    w.set_user_context(paper_fig2d_statements());
    w.run()?;
    print_quality("+user context", &w, &scenario);
    println!(
        "selected mapping: {:?}",
        w.kb().selected_mapping().unwrap_or("none")
    );

    println!("\n=== browsable trace (paper §3) ===");
    println!("{}", w.trace().render());
    Ok(())
}
